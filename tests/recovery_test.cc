// Crash-recovery tests of the durable ingest path: a server is stopped
// (or its WAL is torn behind its back), a second server recovers from the
// same directory, producers resume via the IngestBegin ack's resume_seq,
// and the recovered stream — closed-convoy history, seq dedup, ad-hoc
// query state — must be bit-identical to an uninterrupted run. The
// process-kill variant of these tests lives in convoy_loadgen --chaos
// (exercised by run_checks.sh); here the same invariants run in-process
// where every step is deterministic and debuggable.

#include <gtest/gtest.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/streaming.h"
#include "datagen/stream_feed.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"
#include "server/session.h"
#include "traj/database.h"
#include "wal/fault.h"
#include "wal/wal.h"

namespace convoy::server {
namespace {

std::string FreshWalDir() {
  static int counter = 0;
  return ::testing::TempDir() + "recovery_test_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++);
}

std::vector<PositionReport> ToWire(const std::vector<FeedRow>& rows) {
  std::vector<PositionReport> wire;
  wire.reserve(rows.size());
  for (const FeedRow& row : rows) {
    wire.push_back(PositionReport{row.id, row.pos.x, row.pos.y});
  }
  return wire;
}

/// Replays a feed through a local StreamingCmc — the unfaulted reference
/// every recovered run must match bit-identically.
std::vector<Convoy> LocalReplay(const StreamFeed& feed,
                                Tick carry_forward = 0) {
  StreamingCmc::Options options;
  options.carry_forward_ticks = carry_forward;
  StreamingCmc stream(feed.query, options);
  std::vector<Convoy> closed;
  for (const FeedTick& tick : feed.ticks) {
    EXPECT_TRUE(stream.BeginTick(tick.tick).ok());
    for (const auto& batch : tick.batches) {
      for (const FeedRow& row : batch) {
        EXPECT_TRUE(stream.Report(row.id, row.pos).ok());
      }
    }
    const auto result = stream.EndTick();
    EXPECT_TRUE(result.ok());
    closed.insert(closed.end(), result->begin(), result->end());
  }
  const auto final_result = stream.Finish();
  EXPECT_TRUE(final_result.ok());
  closed.insert(closed.end(), final_result->begin(), final_result->end());
  return closed;
}

/// The feed's rows as a TrajectoryDatabase (last write per (object, tick)
/// wins) — the reference input of the ad-hoc query comparison.
TrajectoryDatabase FeedDatabase(const StreamFeed& feed) {
  std::map<ObjectId, std::map<Tick, Point>> rows;
  for (const FeedTick& tick : feed.ticks) {
    for (const auto& batch : tick.batches) {
      for (const FeedRow& row : batch) {
        rows[row.id][tick.tick] = row.pos;
      }
    }
  }
  TrajectoryDatabase db;
  for (const auto& [id, points] : rows) {
    std::vector<TimedPoint> samples;
    samples.reserve(points.size());
    for (const auto& [tick, pos] : points) {
      samples.emplace_back(pos.x, pos.y, tick);
    }
    db.Add(Trajectory(id, std::move(samples)));
  }
  return db;
}

/// Extracts one counter value from the server's StatsJson.
uint64_t StatsCounter(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const size_t pos = json.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + key.size(), nullptr, 10);
}

ClientOptions TestClientOptions() {
  ClientOptions options;
  options.deadline_ms = 30000;  // a hang is a failure, not a freeze
  return options;
}

std::unique_ptr<ConvoyClient> MustConnect(uint16_t port) {
  auto client =
      ConvoyClient::Connect("127.0.0.1", port, TestClientOptions());
  EXPECT_TRUE(client.ok()) << client.status();
  return client.ok() ? std::move(*client) : nullptr;
}

ServerOptions DurableOptions(const std::string& wal_dir) {
  ServerOptions options;
  options.port = 0;
  options.wal_dir = wal_dir;
  return options;
}

/// Sends the feed's ticks in [from, to) with acks required, returning the
/// seq of every sent item in order (the op <-> seq map a torn-tail resume
/// needs).
void SendTicks(ConvoyClient& client, const StreamFeed& feed, size_t from,
               size_t to, std::vector<uint64_t>* seqs = nullptr) {
  for (size_t t = from; t < to && t < feed.ticks.size(); ++t) {
    const FeedTick& tick = feed.ticks[t];
    for (const auto& batch : tick.batches) {
      const uint64_t seq = client.SendBatch(tick.tick, ToWire(batch));
      if (seqs != nullptr) seqs->push_back(seq);
      const auto ack = client.AwaitAck(seq);
      ASSERT_TRUE(ack.ok()) << ack.status();
      ASSERT_EQ(ack->code, 0) << ack->message;
    }
    const uint64_t seq = client.SendEndTick(tick.tick);
    if (seqs != nullptr) seqs->push_back(seq);
    const auto ack = client.AwaitAck(seq);
    ASSERT_TRUE(ack.ok()) << ack.status();
    ASSERT_EQ(ack->code, 0) << ack->message;
  }
}

/// Reads events until kStreamEnd, collecting closed convoys deduped by
/// event_index (a replay_closed catch-up may overlap the live feed).
void CollectClosed(ConvoyClient& client,
                   std::map<uint64_t, Convoy>* closed_by_index) {
  for (;;) {
    const auto event = client.NextEvent();
    ASSERT_TRUE(event.ok()) << event.status();
    const auto kind = static_cast<EventKind>(event->kind);
    if (kind == EventKind::kConvoyClosed) {
      ASSERT_NE(event->event_index, 0u);
      closed_by_index->emplace(event->event_index, event->convoy);
    }
    if (kind == EventKind::kStreamEnd) return;
  }
}

void ExpectClosedMatches(const std::map<uint64_t, Convoy>& closed_by_index,
                         const std::vector<Convoy>& expected) {
  ASSERT_EQ(closed_by_index.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    const auto it = closed_by_index.find(i + 1);
    ASSERT_NE(it, closed_by_index.end()) << "missing event_index " << i + 1;
    EXPECT_EQ(it->second, expected[i]) << "event_index " << i + 1;
  }
}

// ---------------------------------------------------------------------------
// Full-stack: stop a durable server mid-stream, recover, resume, finish.

class RecoveryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RecoveryTest, RestartedServerResumesBitIdentical) {
  const size_t num_streams = GetParam();
  const std::string wal_dir = FreshWalDir();

  StreamFeedConfig config;
  config.num_objects = 24;
  config.ticks = 12;
  config.batch_rows = 8;
  config.dropout = 0.05;
  std::vector<StreamFeed> feeds;
  for (size_t s = 0; s < num_streams; ++s) {
    feeds.push_back(GenerateStreamFeed(config, 40 + s));
  }
  const size_t half = static_cast<size_t>(config.ticks) / 2;

  // Phase A: ingest the first half of every feed, then stop the server.
  {
    ConvoyServer server(DurableOptions(wal_dir));
    ASSERT_TRUE(server.Start().ok());
    for (size_t s = 0; s < num_streams; ++s) {
      auto client = MustConnect(server.port());
      ASSERT_NE(client, nullptr);
      ASSERT_TRUE(client->IngestBegin(s + 1, feeds[s].query).ok());
      SendTicks(*client, feeds[s], 0, half);
    }
    server.Shutdown();
  }

  // Phase B: a fresh server on the same WAL recovers every stream;
  // producers resume after resume_seq, subscribers replay the recovered
  // closed history, and the final state matches an uninterrupted run.
  ConvoyServer server(DurableOptions(wal_dir));
  ASSERT_TRUE(server.Start().ok());

  for (size_t s = 0; s < num_streams; ++s) {
    auto producer = MustConnect(server.port());
    ASSERT_NE(producer, nullptr);
    uint64_t resume_seq = 0;
    ASSERT_TRUE(producer
                    ->IngestBegin(s + 1, feeds[s].query,
                                  /*carry_forward_ticks=*/0, &resume_seq)
                    .ok());
    // Everything phase A acked was recovered: one seq per item plus the
    // phase-A IngestBegin which consumed seq 1.
    uint64_t phase_a_items = 0;
    for (size_t t = 0; t < half; ++t) {
      phase_a_items += feeds[s].ticks[t].batches.size() + 1;
    }
    EXPECT_EQ(resume_seq, phase_a_items + 1);

    auto subscriber = MustConnect(server.port());
    ASSERT_NE(subscriber, nullptr);
    ASSERT_TRUE(subscriber->Subscribe(s + 1, /*replay_closed=*/true).ok());

    SendTicks(*producer, feeds[s], half, feeds[s].ticks.size());
    const auto fin = producer->Finish(/*max_retries=*/100);
    ASSERT_TRUE(fin.ok());
    ASSERT_EQ(fin->code, 0) << fin->message;

    std::map<uint64_t, Convoy> closed_by_index;
    CollectClosed(*subscriber, &closed_by_index);
    ExpectClosedMatches(closed_by_index, LocalReplay(feeds[s]));

    // The recovered row table answers ad-hoc queries identically to a
    // local engine over the full feed.
    const auto remote = producer->Query(s + 1, feeds[s].query);
    ASSERT_TRUE(remote.ok()) << remote.status();
    ASSERT_EQ(remote->code, 0) << remote->message;
    ConvoyEngine local(FeedDatabase(feeds[s]));
    const auto plan = local.Prepare(feeds[s].query);
    ASSERT_TRUE(plan.ok());
    auto local_result = local.Execute(*plan);
    ASSERT_TRUE(local_result.ok());
    EXPECT_EQ(remote->convoys, std::move(*local_result).TakeConvoys());
  }

  // The recovery actually happened (not a fresh-WAL false pass).
  EXPECT_GT(StatsCounter(server.StatsJson(), "wal.recovered_records"), 0u);
  server.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Streams, RecoveryTest,
                         ::testing::Values(1u, 2u, 8u));

// ---------------------------------------------------------------------------
// Torn tail: the WAL loses its last records behind the server's back
// (fsync=none + OS crash). Recovery truncates, the producer resends from
// resume_seq + 1, and the result is still bit-identical.

TEST(RecoveryTornTailTest, TornTailResentFromResumeSeq) {
  const std::string wal_dir = FreshWalDir();

  StreamFeedConfig config;
  config.num_objects = 20;
  config.ticks = 10;
  config.batch_rows = 8;
  const StreamFeed feed = GenerateStreamFeed(config, 99);

  // Complete run (Finish included) against server A.
  std::vector<uint64_t> seqs;
  {
    ConvoyServer server(DurableOptions(wal_dir));
    ASSERT_TRUE(server.Start().ok());
    auto client = MustConnect(server.port());
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->IngestBegin(1, feed.query).ok());
    SendTicks(*client, feed, 0, feed.ticks.size(), &seqs);
    const uint64_t fin_seq = client->SendFinish();
    seqs.push_back(fin_seq);
    const auto fin = client->AwaitAck(fin_seq);
    ASSERT_TRUE(fin.ok());
    ASSERT_EQ(fin->code, 0);
    server.Shutdown();
  }

  // Tear the tail: drop the last ~100 bytes of the segment — at least the
  // kFinish record, usually a couple more.
  const std::string segment = wal::WalSegmentPath(wal_dir, 0);
  std::string bytes;
  {
    std::ifstream in(segment, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 200u);
  bytes.resize(bytes.size() - 100);
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Server B recovers the surviving prefix; the producer replays every op
  // whose seq is past resume_seq. The lost records were acked, but the
  // producer still holds them — exactly the reconnect-and-resume
  // contract.
  ConvoyServer server(DurableOptions(wal_dir));
  ASSERT_TRUE(server.Start().ok());
  auto producer = MustConnect(server.port());
  ASSERT_NE(producer, nullptr);
  uint64_t resume_seq = 0;
  ASSERT_TRUE(
      producer->IngestBegin(1, feed.query, 0, &resume_seq).ok());
  ASSERT_LT(resume_seq, seqs.back());  // the tear really lost acked work

  auto subscriber = MustConnect(server.port());
  ASSERT_NE(subscriber, nullptr);
  ASSERT_TRUE(subscriber->Subscribe(1, /*replay_closed=*/true).ok());

  // Rebuild the op list in phase-A order and resend the lost suffix.
  size_t op = 0;
  for (const FeedTick& tick : feed.ticks) {
    for (const auto& batch : tick.batches) {
      if (seqs[op++] > resume_seq) {
        const auto ack = producer->ReportBatch(tick.tick, ToWire(batch), 100);
        ASSERT_TRUE(ack.ok());
        ASSERT_EQ(ack->code, 0) << ack->message;
      }
    }
    if (seqs[op++] > resume_seq) {
      const auto ack = producer->EndTick(tick.tick, 100);
      ASSERT_TRUE(ack.ok());
      ASSERT_EQ(ack->code, 0) << ack->message;
    }
  }
  const auto fin = producer->Finish(100);
  ASSERT_TRUE(fin.ok());
  ASSERT_EQ(fin->code, 0) << fin->message;

  std::map<uint64_t, Convoy> closed_by_index;
  CollectClosed(*subscriber, &closed_by_index);
  ExpectClosedMatches(closed_by_index, LocalReplay(feed));
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Session-level invariants: duplicate absorption and WAL-failure poisoning.

class RecordingSink : public StreamSink {
 public:
  void SendAck(uint64_t, const AckMsg& ack) override {
    std::lock_guard<std::mutex> lock(mu_);
    acks_.push_back(ack);
    cv_.notify_all();
  }
  void SendEvent(const EventMsg&) override {}

  std::vector<AckMsg> WaitForAcks(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return acks_.size() >= n; });
    return acks_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<AckMsg> acks_;
};

IngestBeginMsg TestBegin(uint64_t stream_id) {
  IngestBeginMsg begin;
  begin.stream_id = stream_id;
  begin.m = 2;
  begin.k = 2;
  begin.e = 1.0;
  return begin;
}

WorkItem Batch(uint64_t seq, Tick tick, std::vector<PositionReport> rows) {
  WorkItem item;
  item.kind = WorkItem::Kind::kBatch;
  item.seq = seq;
  item.tick = tick;
  item.rows = std::move(rows);
  return item;
}

TEST(RecoverySessionTest, ResentSeqAbsorbedAsDuplicate) {
  RecordingSink sink;
  IngestStream stream(TestBegin(1), /*ring_capacity=*/8, &sink, nullptr);
  ASSERT_EQ(stream.Submit(Batch(2, 0, {{1, 0, 0}, {2, 0, 0.5}})),
            PushResult::kAccepted);
  WorkItem end_tick;
  end_tick.kind = WorkItem::Kind::kEndTick;
  end_tick.seq = 3;
  end_tick.tick = 0;
  ASSERT_EQ(stream.Submit(end_tick), PushResult::kAccepted);
  sink.WaitForAcks(2);
  EXPECT_EQ(stream.LastAppliedSeq(), 3u);

  // A reconnect-style resend of both items: acked OK, flagged duplicate,
  // applied zero times (accepted == 0, last applied unchanged).
  ASSERT_EQ(stream.Submit(Batch(2, 0, {{1, 0, 0}, {2, 0, 0.5}})),
            PushResult::kAccepted);
  ASSERT_EQ(stream.Submit(end_tick), PushResult::kAccepted);
  const std::vector<AckMsg> acks = sink.WaitForAcks(4);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(acks[i].code, 0);
    EXPECT_EQ(acks[i].flags & kAckFlagDuplicate, 0);
  }
  for (size_t i = 2; i < 4; ++i) {
    EXPECT_EQ(acks[i].code, 0) << acks[i].message;
    EXPECT_NE(acks[i].flags & kAckFlagDuplicate, 0);
    EXPECT_EQ(acks[i].accepted, 0u);
  }
  EXPECT_EQ(stream.LastAppliedSeq(), 3u);
  stream.Close();
}

TEST(RecoverySessionTest, WalAppendFailurePoisonsStreamNotTheLog) {
  const std::string wal_dir = FreshWalDir();
  wal::FaultInjector::Options fault_options;
  fault_options.fail_writes_after = 3;  // header, one record, then dead
  wal::FaultInjector injector(fault_options);
  wal::SetFaultInjector(&injector);

  auto wal = wal::WalWriter::Open(wal::WalOptions{wal_dir}, nullptr);
  ASSERT_TRUE(wal.ok());
  RecordingSink sink;
  {
    IngestStream stream(TestBegin(1), /*ring_capacity=*/8, &sink, nullptr,
                        wal->get());
    ASSERT_EQ(stream.Submit(Batch(2, 0, {{1, 0, 0}})),
              PushResult::kAccepted);
    const std::vector<AckMsg> first = sink.WaitForAcks(1);
    ASSERT_EQ(first[0].code, 0);

    // This item applies in memory but cannot be logged: it must be NAKed
    // non-retryably (acked => recoverable would otherwise break), and the
    // stream must refuse everything after it.
    ASSERT_EQ(stream.Submit(Batch(3, 0, {{2, 0, 0}})),
              PushResult::kAccepted);
    const std::vector<AckMsg> acks = sink.WaitForAcks(2);
    EXPECT_NE(acks[1].code, 0);
    EXPECT_EQ(acks[1].retryable, 0);
    EXPECT_EQ(stream.LastAppliedSeq(), 2u);

    // The ring is closed (or the item is NAKed): no later item ever acks
    // OK over the log gap.
    const PushResult later = stream.Submit(Batch(4, 0, {{3, 0, 0}}));
    if (later == PushResult::kAccepted) {
      const std::vector<AckMsg> all = sink.WaitForAcks(3);
      EXPECT_NE(all[2].code, 0);
    }
    stream.Close();
  }
  wal::SetFaultInjector(nullptr);

  // The log holds exactly the acked prefix.
  wal::WalReadStats stats;
  std::vector<wal::WalRecord> records;
  ASSERT_TRUE(wal::ReadWalDir(
                  wal_dir,
                  [&](const wal::WalRecord& record) {
                    records.push_back(record);
                    return Status::Ok();
                  },
                  &stats)
                  .ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 2u);
}

}  // namespace
}  // namespace convoy::server
