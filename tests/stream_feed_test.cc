#include "datagen/stream_feed.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "core/streaming.h"

namespace convoy {
namespace {

StreamFeedConfig SmallConfig() {
  StreamFeedConfig config;
  config.num_objects = 20;
  config.ticks = 15;
  config.batch_rows = 6;
  config.num_groups = 2;
  config.group_size = 4;
  return config;
}

TEST(StreamFeedTest, DeterministicInConfigAndSeed) {
  const StreamFeed a = GenerateStreamFeed(SmallConfig(), 42);
  const StreamFeed b = GenerateStreamFeed(SmallConfig(), 42);
  ASSERT_EQ(a.ticks.size(), b.ticks.size());
  for (size_t t = 0; t < a.ticks.size(); ++t) {
    ASSERT_EQ(a.ticks[t].batches.size(), b.ticks[t].batches.size());
    for (size_t i = 0; i < a.ticks[t].batches.size(); ++i) {
      const auto& ba = a.ticks[t].batches[i];
      const auto& bb = b.ticks[t].batches[i];
      ASSERT_EQ(ba.size(), bb.size());
      for (size_t r = 0; r < ba.size(); ++r) {
        EXPECT_EQ(ba[r].id, bb[r].id);
        EXPECT_EQ(ba[r].pos.x, bb[r].pos.x);
        EXPECT_EQ(ba[r].pos.y, bb[r].pos.y);
      }
    }
  }
  // A different seed actually varies the feed.
  const StreamFeed c = GenerateStreamFeed(SmallConfig(), 43);
  bool differs = false;
  for (size_t t = 0; !differs && t < a.ticks.size(); ++t) {
    if (a.ticks[t].total_rows != c.ticks[t].total_rows) {
      differs = true;
      break;
    }
    if (!a.ticks[t].batches.empty() && !c.ticks[t].batches.empty()) {
      const FeedRow& ra = a.ticks[t].batches[0][0];
      const FeedRow& rc = c.ticks[t].batches[0][0];
      differs =
          ra.id != rc.id || ra.pos.x != rc.pos.x || ra.pos.y != rc.pos.y;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(StreamFeedTest, ShapeInvariants) {
  const StreamFeedConfig config = SmallConfig();
  const StreamFeed feed = GenerateStreamFeed(config, 7);
  ASSERT_EQ(feed.ticks.size(), static_cast<size_t>(config.ticks));
  for (size_t t = 0; t < feed.ticks.size(); ++t) {
    const FeedTick& tick = feed.ticks[t];
    EXPECT_EQ(tick.tick, static_cast<Tick>(t));  // tick-ordered, no gaps
    size_t rows = 0;
    std::set<ObjectId> seen;
    for (const auto& batch : tick.batches) {
      EXPECT_FALSE(batch.empty());
      EXPECT_LE(batch.size(), config.batch_rows);  // rate shaping
      for (const FeedRow& row : batch) {
        EXPECT_LT(row.id, config.num_objects);
        EXPECT_TRUE(std::isfinite(row.pos.x));
        EXPECT_TRUE(std::isfinite(row.pos.y));
        EXPECT_TRUE(seen.insert(row.id).second)  // one report per object
            << "object " << row.id << " reported twice in tick " << t;
      }
      rows += batch.size();
    }
    EXPECT_EQ(rows, tick.total_rows);
    EXPECT_LE(rows, config.num_objects);
  }
  // The suggested query is valid for streaming use.
  EXPECT_GE(feed.query.m, 2u);
  EXPECT_GE(feed.query.k, 2);
  EXPECT_GT(feed.query.e, 0.0);
}

TEST(StreamFeedTest, NoDropoutNoChurnReportsEveryObjectEveryTick) {
  StreamFeedConfig config = SmallConfig();
  config.dropout = 0.0;
  config.leave_prob = 0.0;
  const StreamFeed feed = GenerateStreamFeed(config, 3);
  for (const FeedTick& tick : feed.ticks) {
    EXPECT_EQ(tick.total_rows, config.num_objects);
  }
}

TEST(StreamFeedTest, DropoutThinsReports) {
  StreamFeedConfig config = SmallConfig();
  config.dropout = 0.4;
  const StreamFeed feed = GenerateStreamFeed(config, 3);
  size_t total = 0;
  for (const FeedTick& tick : feed.ticks) total += tick.total_rows;
  const size_t max_possible =
      config.num_objects * static_cast<size_t>(config.ticks);
  // With 40% dropout the total must fall clearly below full attendance
  // (and stay above an implausibly low floor).
  EXPECT_LT(total, max_possible * 8 / 10);
  EXPECT_GT(total, max_possible * 3 / 10);
}

TEST(StreamFeedTest, DropoutDoesNotPerturbMovement) {
  // The dropout draw happens after the position draw, so the surviving
  // rows of a lossy feed coincide exactly with the same rows of the
  // lossless feed — dropping reports must not steer the objects.
  StreamFeedConfig clean = SmallConfig();
  clean.dropout = 0.0;
  StreamFeedConfig lossy = clean;
  lossy.dropout = 0.3;
  const StreamFeed full = GenerateStreamFeed(clean, 11);
  const StreamFeed thin = GenerateStreamFeed(lossy, 11);

  for (size_t t = 0; t < full.ticks.size(); ++t) {
    std::map<ObjectId, Point> full_pos;
    for (const auto& batch : full.ticks[t].batches) {
      for (const FeedRow& row : batch) full_pos[row.id] = row.pos;
    }
    for (const auto& batch : thin.ticks[t].batches) {
      for (const FeedRow& row : batch) {
        const auto it = full_pos.find(row.id);
        ASSERT_NE(it, full_pos.end());
        EXPECT_EQ(row.pos.x, it->second.x) << "tick " << t;
        EXPECT_EQ(row.pos.y, it->second.y);
      }
    }
  }
}

TEST(StreamFeedTest, PlantedGroupsFormConvoysUnderSuggestedQuery) {
  StreamFeedConfig config = SmallConfig();
  config.dropout = 0.0;
  config.leave_prob = 0.0;
  const StreamFeed feed = GenerateStreamFeed(config, 5);

  StreamingCmc stream(feed.query);
  std::vector<Convoy> closed;
  for (const FeedTick& tick : feed.ticks) {
    ASSERT_TRUE(stream.BeginTick(tick.tick).ok());
    for (const auto& batch : tick.batches) {
      for (const FeedRow& row : batch) {
        ASSERT_TRUE(stream.Report(row.id, row.pos).ok());
      }
    }
    const auto result = stream.EndTick();
    ASSERT_TRUE(result.ok());
    closed.insert(closed.end(), result->begin(), result->end());
  }
  const auto final_result = stream.Finish();
  ASSERT_TRUE(final_result.ok());
  closed.insert(closed.end(), final_result->begin(), final_result->end());

  // Each planted group (ids g*group_size .. g*group_size+group_size-1)
  // must appear inside some discovered convoy.
  for (size_t g = 0; g < config.num_groups; ++g) {
    bool found = false;
    for (const Convoy& convoy : closed) {
      bool all = true;
      for (size_t member = 0; member < config.group_size; ++member) {
        const ObjectId id =
            static_cast<ObjectId>(g * config.group_size + member);
        if (!std::binary_search(convoy.objects.begin(), convoy.objects.end(),
                                id)) {
          all = false;
          break;
        }
      }
      if (all) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "group " << g << " never formed a convoy";
  }
}

TEST(StreamFeedTest, ChurnProducesLeaversThatReturn) {
  StreamFeedConfig config = SmallConfig();
  config.ticks = 60;
  config.leave_prob = 0.15;
  config.rejoin_prob = 0.3;
  config.dropout = 0.0;
  const StreamFeed feed = GenerateStreamFeed(config, 9);

  // With churn on, group members wander far from the anchor while away.
  // Detect it via per-object displacement between consecutive reports of
  // members vs the group anchor: an away member's distance to its group
  // peers must exceed the in-formation bound at some tick, then return
  // within it later (the vanish-and-return pattern carry_forward tests
  // rely on).
  const ObjectId member0 = 0;
  const ObjectId member1 = 1;  // same group as member0
  std::vector<double> gaps;
  for (const FeedTick& tick : feed.ticks) {
    Point p0{}, p1{};
    bool s0 = false, s1 = false;
    for (const auto& batch : tick.batches) {
      for (const FeedRow& row : batch) {
        if (row.id == member0) {
          p0 = row.pos;
          s0 = true;
        } else if (row.id == member1) {
          p1 = row.pos;
          s1 = true;
        }
      }
    }
    if (s0 && s1) {
      const double dx = p0.x - p1.x;
      const double dy = p0.y - p1.y;
      gaps.push_back(std::sqrt(dx * dx + dy * dy));
    }
  }
  ASSERT_GT(gaps.size(), 10u);
  const double formation_bound = 3.0 * config.group_spread;
  bool left = false;
  bool returned_after_leaving = false;
  for (const double gap : gaps) {
    if (gap > formation_bound) left = true;
    if (left && gap <= formation_bound) returned_after_leaving = true;
  }
  EXPECT_TRUE(left) << "no member ever left its formation";
  EXPECT_TRUE(returned_after_leaving) << "no leaver ever rejoined";
}

}  // namespace
}  // namespace convoy
