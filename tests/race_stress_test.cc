// Race-stress suite: hammers every documented concurrent entry point so a
// ThreadSanitizer build (preset `tsan`, CI job `tsan`) can prove the
// thread-safety contracts instead of taking the comments' word for them.
// The tests also run — and must pass — in plain builds, where they check
// the *results* of concurrent use (determinism across threads, exact
// counter totals after joins); under TSan they additionally check the
// synchronization itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "cluster/grid_index.h"
#include "core/cuts.h"
#include "core/cuts_filter.h"
#include "core/engine.h"
#include "core/params.h"
#include "core/streaming.h"
#include "datagen/stream_feed.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"
#include "server/session.h"
#include "tests/test_util.h"
#include "traj/snapshot_store.h"
#include "util/random.h"

namespace convoy {
namespace {

using testutil::RandomClumpyDb;

// Serializes a convoy result into a comparable fingerprint.
std::string Fingerprint(const std::vector<Convoy>& convoys) {
  std::ostringstream out;
  for (const Convoy& c : convoys) {
    out << c.start_tick << ":" << c.end_tick << "[";
    for (const ObjectId id : c.objects) out << id << ",";
    out << "];";
  }
  return out.str();
}

// Many threads sharing one ConvoyEngine: concurrent Prepare/Execute and
// legacy Discover calls race on the simplification cache, the memoized
// stats, and the lazily built SnapshotStore. Every thread must get the
// bit-identical result the engine produces single-threaded.
TEST(RaceStressTest, ConcurrentPrepareExecuteDiscoverOneEngine) {
  Rng rng(20260807);
  ConvoyEngine engine(RandomClumpyDb(rng, 30, 24, 50.0, 1.0));
  const ConvoyQuery query{3, 5, 4.0};

  std::string expected_exec;
  {
    const auto plan = engine.Prepare(query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const auto result = engine.Execute(*plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected_exec = Fingerprint(result->convoys());
  }
  const std::string expected_discover = Fingerprint(engine.Discover(query));

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 8;
  std::vector<std::string> exec_prints(kThreads);
  std::vector<std::string> discover_prints(kThreads);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kItersPerThread; ++i) {
          const auto plan = engine.Prepare(query);
          if (!plan.ok()) {
            failures.fetch_add(1);
            return;
          }
          const auto result = engine.Execute(*plan);
          if (!result.ok()) {
            failures.fetch_add(1);
            return;
          }
          exec_prints[static_cast<size_t>(t)] =
              Fingerprint(result->convoys());
          discover_prints[static_cast<size_t>(t)] =
              Fingerprint(engine.Discover(query));
          // Metrics reads racing the queries above (from sibling threads)
          // must be safe and monotone-consistent.
          const EngineStoreMetrics m = engine.StoreMetrics();
          if (m.simplify_cache_hits + m.simplify_cache_misses == 0 &&
              i > 0) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(exec_prints[static_cast<size_t>(t)], expected_exec)
        << "thread " << t;
    EXPECT_EQ(discover_prints[static_cast<size_t>(t)], expected_discover)
        << "thread " << t;
  }
}

// Concurrent CutsFilterPresimplified calls over one shared database and
// simplification — the sharing pattern ConvoyEngine sets up when parallel
// Execute calls hit the CuTS* plan. The rewritten filter keeps all mutable
// state call-local (the SoA arena scratch is per worker chunk, the SIMD
// kernels are pure), and each call itself runs a multi-threaded partition
// loop, so every caller must produce the identical candidate list.
TEST(RaceStressTest, ConcurrentCutsFilterSharedSimplification) {
  Rng rng(5150);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 40, 60, 60.0, 1.5);
  const ConvoyQuery query{3, 10, 5.0};
  CutsFilterOptions options = MakeFilterOptions(CutsVariant::kCutsStar);
  const double delta = ComputeDelta(db, query.e);
  const std::vector<SimplifiedTrajectory> simplified =
      SimplifyDatabase(db, delta, options.simplifier);
  options.num_threads = 2;

  const CutsFilterResult expected =
      CutsFilterPresimplified(db, query, options, simplified, delta);
  ASSERT_FALSE(expected.candidates.empty());

  constexpr int kThreads = 4;
  constexpr int kIters = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const CutsFilterResult got =
            CutsFilterPresimplified(db, query, options, simplified, delta);
        if (got.candidates.size() != expected.candidates.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t c = 0; c < got.candidates.size(); ++c) {
          const Candidate& want = expected.candidates[c];
          const Candidate& have = got.candidates[c];
          if (have.objects != want.objects ||
              have.start_tick != want.start_tick ||
              have.end_tick != want.end_tick ||
              have.lifetime != want.lifetime) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// GridFor builders racing readers during eviction churn: more distinct eps
// values than kMaxCachedEpsValues cycle through the cache while other
// threads poll GridCacheSize / CacheMetrics. Returned grids must stay
// usable even after their eps is evicted (shared_ptr keeps them alive).
TEST(RaceStressTest, GridCacheEvictionVsConcurrentReaders) {
  Rng rng(42);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 25, 20, 40.0, 1.0);
  const SnapshotStore store = SnapshotStore::Build(db);
  ASSERT_FALSE(store.Empty());

  // Twice the cache bound, so steady-state request traffic keeps evicting.
  const size_t num_eps = 2 * SnapshotStore::kMaxCachedEpsValues;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> gridfor_calls{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> builders;
  for (int t = 0; t < 2; ++t) {
    builders.emplace_back([&, t] {
      for (int round = 0; round < 40; ++round) {
        for (size_t e = 0; e < num_eps; ++e) {
          const double eps = 2.0 + 0.5 * static_cast<double>(e);
          const Tick tick =
              store.begin_tick() +
              static_cast<Tick>((round + t) % static_cast<int>(
                                    std::max<size_t>(store.NumTicks(), 1)));
          const std::shared_ptr<const GridIndex> grid =
              store.GridFor(tick, eps);
          gridfor_calls.fetch_add(1);
          if (grid == nullptr) failures.fetch_add(1);
        }
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      (void)store.GridCacheSize();
      const StoreCacheMetrics m = store.CacheMetrics();
      if (m.grid_cache_hits + m.grid_cache_misses >
          gridfor_calls.load() + 1000000) {
        failures.fetch_add(1);
      }
    }
  });
  for (std::thread& th : builders) th.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  const StoreCacheMetrics final_metrics = store.CacheMetrics();
  // Quiescent totals are exact: every GridFor was either a hit or a miss.
  EXPECT_EQ(final_metrics.grid_cache_hits + final_metrics.grid_cache_misses,
            gridfor_calls.load());
  EXPECT_GT(final_metrics.grid_evictions, 0u);
  EXPECT_LE(store.GridCacheSize(),
            SnapshotStore::kMaxCachedEpsValues * store.NumTicks());
}

// TraceSession merged reads racing the recording threads: recorders spin
// on Count/CountMax/Observe/RecordSpan while readers concurrently pull
// Metrics(), counter(), Events() and the Chrome trace export. Totals must
// be exact after the join; live reads must be safe and monotone.
TEST(RaceStressTest, TraceSessionLiveReadsVsRecorders) {
  TraceSession trace;
  constexpr int kRecorders = 3;
  constexpr uint64_t kIncrementsPerThread = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> recorders;
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([&, t] {
      SetTraceThreadLabel("stress-recorder");
      for (uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        trace.Count(TraceCounter::kTrackerSteps, 1);
        trace.CountMax(TraceCounter::kTrackerLiveMax,
                       static_cast<uint64_t>(t) * kIncrementsPerThread + i);
        if (i % 64 == 0) {
          trace.Observe("stress.series", static_cast<double>(i));
          const uint64_t now = trace.NowNs();
          trace.RecordSpan("stress.span", now, now + 10);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last_total = 0;
      while (!stop.load()) {
        const uint64_t total = trace.counter(TraceCounter::kTrackerSteps);
        if (total < last_total) failures.fetch_add(1);  // must be monotone
        last_total = total;
        const QueryMetrics m = trace.Metrics();
        if (m.counters[static_cast<size_t>(TraceCounter::kTrackerSteps)] <
            last_total / 2) {
          // Heuristic staleness check only — the real assertion is TSan's.
          (void)m;
        }
        (void)trace.Events();
        std::ostringstream sink;
        trace.WriteChromeTrace(sink);
      }
    });
  }
  for (std::thread& th : recorders) th.join();
  stop.store(true);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(failures.load(), 0);
  // After the join the relaxed counter cells are exact.
  EXPECT_EQ(trace.counter(TraceCounter::kTrackerSteps),
            kRecorders * kIncrementsPerThread);
  EXPECT_EQ(trace.counter(TraceCounter::kTrackerLiveMax),
            (kRecorders - 1) * kIncrementsPerThread +
                (kIncrementsPerThread - 1));
  const QueryMetrics metrics = trace.Metrics();
  EXPECT_EQ(
      metrics.counters[static_cast<size_t>(TraceCounter::kTrackerSteps)],
      kRecorders * kIncrementsPerThread);
}

// A live StreamingCmc ticking away while a monitor thread polls the
// attached trace — the monitoring pattern the TraceSession thread-model
// comment promises is safe.
TEST(RaceStressTest, StreamingTicksVsTraceReads) {
  TraceSession trace;
  StreamingCmc stream(ConvoyQuery{2, 3, 3.0});
  stream.set_trace(&trace);

  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load()) {
      (void)trace.Metrics();
      (void)trace.counter(TraceCounter::kSnapshotsClustered);
      std::ostringstream sink;
      trace.WriteChromeTrace(sink);
    }
  });

  constexpr Tick kTicks = 150;
  size_t total_convoys = 0;
  for (Tick t = 0; t < kTicks; ++t) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    for (ObjectId id = 0; id < 6; ++id) {
      const double x = static_cast<double>(t) +
                       (id < 3 ? 0.0 : 40.0) +
                       0.1 * static_cast<double>(id % 3);
      ASSERT_TRUE(stream.Report(id, Point(x, 0.0)).ok());
    }
    const auto out = stream.EndTick();
    ASSERT_TRUE(out.ok());
    total_convoys += out->size();
  }
  const auto rest = stream.Finish();
  ASSERT_TRUE(rest.ok());
  total_convoys += rest->size();
  stop.store(true);
  monitor.join();

  EXPECT_GT(total_convoys, 0u);
  EXPECT_EQ(trace.counter(TraceCounter::kSnapshotsClustered),
            static_cast<uint64_t>(kTicks));
}

// StoreMetrics readers racing first-use store construction: the very
// first Discover builds the SnapshotStore while other threads poll the
// engine's metrics surface and PeekStore.
TEST(RaceStressTest, StoreMetricsVsFirstDiscover) {
  Rng rng(7);
  ConvoyEngine engine(RandomClumpyDb(rng, 25, 20, 40.0, 1.0));
  const ConvoyQuery query{3, 4, 4.0};

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread poller([&] {
    while (!stop.load()) {
      const EngineStoreMetrics m = engine.StoreMetrics();
      if (m.store.grid_cache_hits > 0 && m.store.grid_cache_misses == 0) {
        failures.fetch_add(1);  // a hit without any prior miss is impossible
      }
      (void)engine.PeekStore();
      (void)engine.CacheSize();
    }
  });

  std::vector<std::thread> workers;
  std::vector<std::string> prints(3);
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      prints[static_cast<size_t>(t)] = Fingerprint(engine.Discover(query));
    });
  }
  for (std::thread& th : workers) th.join();
  stop.store(true);
  poller.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(prints[1], prints[0]);
  EXPECT_EQ(prints[2], prints[0]);
}

// ---------------------------------------------------------------------------
// Server surfaces.

// One IngestStream: its worker thread races ad-hoc SnapshotEngine queries
// from two reader-style threads. The row table + engine cache are the
// shared state; every snapshot must be internally consistent and queries
// after the final ack must see every accepted row.
TEST(RaceStressTest, IngestStreamSnapshotQueriesVsWorker) {
  class CountingSink : public server::StreamSink {
   public:
    void SendAck(uint64_t, const server::AckMsg& ack) override {
      if (ack.code == 0) oks.fetch_add(1);
      acks.fetch_add(1);
    }
    void SendEvent(const server::EventMsg&) override {
      events.fetch_add(1);
    }
    std::atomic<uint64_t> acks{0};
    std::atomic<uint64_t> oks{0};
    std::atomic<uint64_t> events{0};
  };

  server::IngestBeginMsg begin;
  begin.stream_id = 1;
  begin.m = 2;
  begin.k = 2;
  begin.e = 1.0;
  CountingSink sink;
  server::IngestStream stream(begin, /*ring_capacity=*/4, &sink, nullptr);

  constexpr Tick kTicks = 40;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> queriers;
  for (int q = 0; q < 2; ++q) {
    queriers.emplace_back([&] {
      while (!done.load()) {
        const std::shared_ptr<const ConvoyEngine> engine =
            stream.SnapshotEngine();
        if (engine == nullptr) {
          failures.fetch_add(1);
          return;
        }
        const auto plan = engine->Prepare(stream.query());
        if (!plan.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (!engine->Execute(*plan).ok()) failures.fetch_add(1);
      }
    });
  }

  uint64_t seq = 0;
  uint64_t submitted = 0;
  const auto submit = [&](server::WorkItem item) {
    while (stream.Submit(item) != server::PushResult::kAccepted) {
      std::this_thread::yield();
    }
    ++submitted;
  };
  for (Tick t = 0; t < kTicks; ++t) {
    server::WorkItem batch;
    batch.kind = server::WorkItem::Kind::kBatch;
    batch.seq = ++seq;
    batch.tick = t;
    batch.rows = {{1, 0.0, 0.1 * static_cast<double>(t)},
                  {2, 0.5, 0.1 * static_cast<double>(t)}};
    submit(batch);
    server::WorkItem end;
    end.kind = server::WorkItem::Kind::kEndTick;
    end.seq = ++seq;
    end.tick = t;
    submit(end);
  }
  server::WorkItem finish;
  finish.kind = server::WorkItem::Kind::kFinish;
  finish.seq = ++seq;
  submit(finish);
  stream.Close();  // drains + joins the worker
  done.store(true);
  for (std::thread& th : queriers) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sink.acks.load(), submitted);
  EXPECT_EQ(sink.oks.load(), submitted);
  EXPECT_GT(sink.events.load(), 0u);

  // Quiescent query sees the full stream: one convoy across every tick.
  const auto engine = stream.SnapshotEngine();
  const auto plan = engine->Prepare(stream.query());
  ASSERT_TRUE(plan.ok());
  auto result = engine->Execute(*plan);
  ASSERT_TRUE(result.ok());
  const std::vector<Convoy> convoys = std::move(*result).TakeConvoys();
  ASSERT_EQ(convoys.size(), 1u);
  EXPECT_EQ(convoys[0].start_tick, 0);
  EXPECT_EQ(convoys[0].end_tick, kTicks - 1);
}

// Whole-server stress over real sockets: concurrent ingest streams with
// live subscribers and query clients, then a determinism check — each
// subscriber's closed-convoy events must equal a local batch replay.
TEST(RaceStressTest, ServerConcurrentIngestSubscribeQuery) {
  server::ConvoyServer server;
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  StreamFeedConfig config;
  config.num_objects = 12;
  config.ticks = 8;
  config.batch_rows = 4;
  config.dropout = 0.1;
  constexpr size_t kStreams = 3;

  std::vector<StreamFeed> feeds;
  for (size_t i = 0; i < kStreams; ++i) {
    feeds.push_back(GenerateStreamFeed(config, 100 + i));
  }

  std::atomic<bool> ingest_done{false};
  std::atomic<int> failures{0};
  std::vector<std::vector<Convoy>> closed(kStreams);

  std::vector<std::thread> threads;
  for (size_t i = 0; i < kStreams; ++i) {
    threads.emplace_back([&, i] {
      auto client = server::ConvoyClient::Connect("127.0.0.1", port);
      auto subscriber = server::ConvoyClient::Connect("127.0.0.1", port);
      if (!client.ok() || !subscriber.ok()) {
        failures.fetch_add(1);
        return;
      }
      const uint64_t stream_id = i + 1;
      if (!(*client)->IngestBegin(stream_id, feeds[i].query).ok() ||
          !(*subscriber)->Subscribe(stream_id).ok()) {
        failures.fetch_add(1);
        return;
      }
      std::thread sub_thread([&, i] {
        for (;;) {
          const auto event = (*subscriber)->NextEvent();
          if (!event.ok()) {
            failures.fetch_add(1);
            return;
          }
          const auto kind = static_cast<server::EventKind>(event->kind);
          if (kind == server::EventKind::kConvoyClosed) {
            closed[i].push_back(event->convoy);
          }
          if (kind == server::EventKind::kStreamEnd) return;
        }
      });
      bool ok = true;
      for (const FeedTick& tick : feeds[i].ticks) {
        for (const auto& batch : tick.batches) {
          std::vector<server::PositionReport> rows;
          for (const FeedRow& row : batch) {
            rows.push_back({row.id, row.pos.x, row.pos.y});
          }
          const auto ack = (*client)->ReportBatch(tick.tick, rows, 1000);
          if (!ack.ok() || ack->code != 0) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
        const auto ack = (*client)->EndTick(tick.tick, 1000);
        if (!ack.ok() || ack->code != 0) ok = false;
        if (!ok) break;
      }
      if (ok) {
        const auto fin = (*client)->Finish(1000);
        ok = fin.ok() && fin->code == 0;
      }
      if (!ok) {
        failures.fetch_add(1);
        (*subscriber)->ShutdownSocket();  // no kStreamEnd will come
      }
      sub_thread.join();
    });
  }
  // Query clients hammering whichever streams exist yet.
  std::vector<std::thread> query_threads;
  for (int q = 0; q < 2; ++q) {
    query_threads.emplace_back([&, q] {
      auto client = server::ConvoyClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      size_t round = static_cast<size_t>(q);
      while (!ingest_done.load()) {
        const size_t i = round++ % kStreams;
        const auto result = (*client)->Query(i + 1, feeds[i].query);
        if (!result.ok()) {
          failures.fetch_add(1);
          return;
        }
        // kNotFound races stream creation — benign. Anything else fatal.
        if (result->code != 0 &&
            result->code != static_cast<uint8_t>(StatusCode::kNotFound)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ingest_done.store(true);
  for (std::thread& th : query_threads) th.join();
  server.Shutdown();

  ASSERT_EQ(failures.load(), 0);
  for (size_t i = 0; i < kStreams; ++i) {
    StreamingCmc replay(feeds[i].query);
    std::vector<Convoy> expected;
    for (const FeedTick& tick : feeds[i].ticks) {
      ASSERT_TRUE(replay.BeginTick(tick.tick).ok());
      for (const auto& batch : tick.batches) {
        for (const FeedRow& row : batch) {
          ASSERT_TRUE(replay.Report(row.id, row.pos).ok());
        }
      }
      const auto out = replay.EndTick();
      ASSERT_TRUE(out.ok());
      expected.insert(expected.end(), out->begin(), out->end());
    }
    const auto rest = replay.Finish();
    ASSERT_TRUE(rest.ok());
    expected.insert(expected.end(), rest->begin(), rest->end());
    EXPECT_EQ(closed[i], expected) << "stream " << i + 1;
  }
}

}  // namespace
}  // namespace convoy
