#include "datagen/scenarios.h"

#include <gtest/gtest.h>

#include "datagen/convoy_planter.h"
#include "datagen/movement.h"
#include "geom/point.h"
#include "util/random.h"

namespace convoy {
namespace {

TEST(MovementTest, PathHasRequestedLength) {
  Rng rng(1);
  MovementConfig config;
  const DensePath path = WaypointPathFrom(rng, config, Point(10, 10), 100);
  EXPECT_EQ(path.size(), 100u);
  EXPECT_EQ(path.front(), Point(10, 10));
}

TEST(MovementTest, PathStaysInWorld) {
  Rng rng(2);
  MovementConfig config;
  config.world_size = 100.0;
  const DensePath path = WaypointPathFrom(rng, config, Point(50, 50), 500);
  for (const Point& p : path) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 100.0);
  }
}

TEST(MovementTest, StepSizeBounded) {
  Rng rng(3);
  MovementConfig config;
  config.speed_mean = 5.0;
  config.speed_jitter = 0.2;
  const DensePath path = WaypointPathFrom(rng, config, Point(0, 0), 300);
  for (size_t i = 1; i < path.size(); ++i) {
    // Speed jitter is Gaussian; allow generous headroom (6 sigma) plus the
    // lateral wobble.
    EXPECT_LE(D(path[i - 1], path[i]), 5.0 * (1.0 + 6.0 * 0.2) + 3.0);
  }
}

TEST(MovementTest, PathToEndsAtTarget) {
  Rng rng(4);
  MovementConfig config;
  const Point target(42, 17);
  const DensePath path = WaypointPathTo(rng, config, target, 50);
  EXPECT_EQ(path.size(), 50u);
  EXPECT_EQ(path.back(), target);
}

TEST(MovementTest, ZeroTicksYieldsEmptyPath) {
  Rng rng(5);
  MovementConfig config;
  EXPECT_TRUE(WaypointPathFrom(rng, config, Point(0, 0), 0).empty());
}

TEST(PlanterTest, MembersStayWithinCohesionDuringWindow) {
  Rng rng(6);
  MovementConfig move;
  PlantConfig plant;
  plant.cohesion_radius = 5.0;
  plant.jitter = 0.4;
  PlantedGroup group;
  group.members = {0, 1, 2, 3};
  group.window_start = 20;
  group.window_end = 80;

  const auto paths = PlantGroupPaths(rng, move, plant, group, 0, 99);
  ASSERT_EQ(paths.size(), 4u);
  for (const DensePath& path : paths) EXPECT_EQ(path.size(), 100u);

  // Pairwise distance within the window never exceeds 2 * cohesion radius
  // (both members within cohesion of the common leader position).
  for (Tick t = group.window_start; t <= group.window_end; ++t) {
    for (size_t a = 0; a < paths.size(); ++a) {
      for (size_t b = a + 1; b < paths.size(); ++b) {
        EXPECT_LE(D(paths[a][static_cast<size_t>(t)],
                    paths[b][static_cast<size_t>(t)]),
                  2.0 * plant.cohesion_radius + 1e-6)
            << "tick " << t;
      }
    }
  }
}

TEST(PlanterTest, ExpectedConvoyMirrorsGroup) {
  PlantedGroup group;
  group.members = {3, 1, 7};
  group.window_start = 5;
  group.window_end = 25;
  const Convoy c = ToExpectedConvoy(group);
  EXPECT_EQ(c.objects, group.members);
  EXPECT_EQ(c.start_tick, 5);
  EXPECT_EQ(c.end_tick, 25);
}

TEST(ScenarioTest, DeterministicForSeed) {
  const ScenarioConfig config = TaxiLikeConfig(0.3);
  const ScenarioData a = GenerateScenario(config, 99);
  const ScenarioData b = GenerateScenario(config, 99);
  ASSERT_EQ(a.db.Size(), b.db.Size());
  for (size_t i = 0; i < a.db.Size(); ++i) {
    ASSERT_EQ(a.db[i].Size(), b.db[i].Size());
    for (size_t j = 0; j < a.db[i].Size(); ++j) {
      EXPECT_EQ(a.db[i][j], b.db[i][j]);
    }
  }
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  const ScenarioConfig config = TaxiLikeConfig(0.3);
  const ScenarioData a = GenerateScenario(config, 1);
  const ScenarioData b = GenerateScenario(config, 2);
  bool any_difference = false;
  for (size_t i = 0; i < a.db.Size() && !any_difference; ++i) {
    if (a.db[i].Size() != b.db[i].Size() ||
        !(a.db[i][0] == b.db[i][0])) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScenarioTest, ObjectCountMatchesConfig) {
  for (const ScenarioConfig& config : AllScenarioConfigs(0.05, 0.01, 0.05,
                                                         0.3)) {
    const ScenarioData data = GenerateScenario(config, 5);
    EXPECT_EQ(data.db.Size(), config.num_objects) << config.name;
    EXPECT_EQ(data.name, config.name);
  }
}

TEST(ScenarioTest, TimeDomainRespected) {
  const ScenarioConfig config = TruckLikeConfig(0.05);
  const ScenarioData data = GenerateScenario(config, 5);
  EXPECT_GE(data.db.BeginTick(), 0);
  EXPECT_LT(data.db.EndTick(), config.time_domain);
}

TEST(ScenarioTest, IrregularSamplingProducesMissingTicks) {
  const ScenarioData taxi = GenerateScenario(TaxiLikeConfig(0.5), 5);
  const DatabaseStats stats = taxi.db.Stats();
  EXPECT_GT(stats.avg_missing_ratio, 0.5) << "taxi sampling should be sparse";

  const ScenarioData cattle = GenerateScenario(CattleLikeConfig(0.005), 5);
  EXPECT_LT(cattle.db.Stats().avg_missing_ratio, 0.01)
      << "cattle sampling is per-tick";
}

TEST(ScenarioTest, PlantedGroupsAreDisjoint) {
  const ScenarioData data = GenerateScenario(TruckLikeConfig(0.1), 5);
  std::vector<bool> seen(data.db.Size(), false);
  for (const PlantedGroup& group : data.planted) {
    for (const ObjectId id : group.members) {
      EXPECT_FALSE(seen[id]) << "object in two planted groups";
      seen[id] = true;
    }
  }
}

TEST(ScenarioTest, PlantedWindowsInsideDomain) {
  for (const ScenarioConfig& config :
       AllScenarioConfigs(0.1, 0.01, 0.1, 0.5)) {
    const ScenarioData data = GenerateScenario(config, 7);
    for (const PlantedGroup& group : data.planted) {
      EXPECT_GE(group.window_start, 0);
      EXPECT_LT(group.window_end, config.time_domain);
      EXPECT_GE(group.members.size(), config.group_size_min);
      EXPECT_LE(group.members.size(), config.group_size_max);
    }
  }
}

TEST(ScenarioTest, GroupMembersAliveThroughWindow) {
  const ScenarioData data = GenerateScenario(CarLikeConfig(0.1), 11);
  for (const PlantedGroup& group : data.planted) {
    for (const ObjectId id : group.members) {
      const Trajectory& traj = data.db[id];
      EXPECT_LE(traj.BeginTick(), group.window_start);
      EXPECT_GE(traj.EndTick(), group.window_end);
    }
  }
}

TEST(ScenarioTest, TrajectoryLengthShapeMatchesPreset) {
  // Truck-like: short trajectories relative to domain. Cattle-like: full.
  const ScenarioData truck = GenerateScenario(TruckLikeConfig(0.25), 3);
  const DatabaseStats truck_stats = truck.db.Stats();
  EXPECT_LT(truck_stats.avg_trajectory_length,
            0.3 * static_cast<double>(truck_stats.time_domain_length));

  const ScenarioData cattle = GenerateScenario(CattleLikeConfig(0.01), 3);
  const DatabaseStats cattle_stats = cattle.db.Stats();
  EXPECT_GT(cattle_stats.avg_trajectory_length,
            0.9 * static_cast<double>(cattle_stats.time_domain_length));
}

}  // namespace
}  // namespace convoy
