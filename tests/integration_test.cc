// End-to-end tests: generate full scenario datasets, run all discovery
// algorithms, and check (i) every planted convoy is recovered, (ii) all
// algorithms agree, (iii) every reported convoy verifies true.

#include <gtest/gtest.h>

#include "convoy/convoy.h"

namespace convoy {
namespace {

struct ScenarioCase {
  const char* label;
  ScenarioConfig config;
  uint64_t seed;
};

class ScenarioIntegrationTest : public ::testing::TestWithParam<ScenarioCase> {
};

TEST_P(ScenarioIntegrationTest, AllAlgorithmsFindPlantedConvoysAndAgree) {
  const ScenarioCase& param = GetParam();
  const ScenarioData data = GenerateScenario(param.config, param.seed);
  const ConvoyQuery query = data.query;

  const auto cmc = Cmc(data.db, query);

  // (i) Every planted convoy window is covered by a CMC result: the members
  // travel within the cohesion radius < e during the window.
  for (const PlantedGroup& group : data.planted) {
    if (group.members.size() < query.m) continue;
    if (group.window_end - group.window_start + 1 < query.k) continue;
    const Convoy expected = ToExpectedConvoy(group);
    EXPECT_TRUE(Uncovered({expected}, cmc).empty())
        << param.label << ": planted convoy missed " << ToString(expected);
  }

  // (ii) CuTS variants agree with CMC (exact refinement mode).
  CutsFilterOptions options;
  options.refine_mode = RefineMode::kFullWindow;
  for (const auto variant :
       {CutsVariant::kCuts, CutsVariant::kCutsPlus, CutsVariant::kCutsStar}) {
    const auto got = Cuts(data.db, query, variant, options);
    EXPECT_TRUE(SameResultSet(cmc, got))
        << param.label << ": " << ToString(variant) << " diverged ("
        << got.size() << " vs " << cmc.size() << " convoys)";
  }

  // (iii) Everything reported verifies against the definition.
  for (const Convoy& c : cmc) {
    EXPECT_TRUE(VerifyConvoy(data.db, query, c))
        << param.label << ": unverifiable convoy " << ToString(c);
  }
}

// Small scales keep each case around a second.
std::vector<ScenarioCase> MakeCases() {
  std::vector<ScenarioCase> cases;
  {
    ScenarioConfig c = TruckLikeConfig(0.08);
    c.num_objects = 60;
    c.num_groups = 3;
    cases.push_back({"TruckLike", c, 101});
  }
  {
    ScenarioConfig c = CattleLikeConfig(0.008);
    c.group_duration_min = 300;
    c.group_duration_max = 500;
    cases.push_back({"CattleLike", c, 102});
  }
  {
    ScenarioConfig c = CarLikeConfig(0.08);
    c.num_objects = 50;
    c.num_groups = 2;
    cases.push_back({"CarLike", c, 103});
  }
  {
    ScenarioConfig c = TaxiLikeConfig(0.5);
    c.num_objects = 120;
    c.query.k = 120;
    c.group_duration_min = 150;
    c.group_duration_max = 250;
    cases.push_back({"TaxiLike", c, 104});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Presets, ScenarioIntegrationTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const auto& param_info) {
                           return std::string(param_info.param.label);
                         });

TEST(IntegrationTest, ProjectedRefinementFindsPlantedConvoysToo) {
  ScenarioConfig config = CarLikeConfig(0.08);
  config.num_objects = 50;
  config.num_groups = 2;
  const ScenarioData data = GenerateScenario(config, 105);

  CutsFilterOptions options;  // default: projected refinement
  const auto got =
      Cuts(data.db, data.query, CutsVariant::kCutsStar, options);
  for (const PlantedGroup& group : data.planted) {
    EXPECT_TRUE(Uncovered({ToExpectedConvoy(group)}, got).empty());
  }
}

TEST(IntegrationTest, Mc2AccuracyDegradesWithTheta) {
  // The appendix B.1 shape: MC2's false positives are substantial because
  // chains without the k constraint get reported. The dense cattle-like
  // paddock produces plenty of short chance meetings.
  ScenarioConfig config = CattleLikeConfig(0.01);
  config.group_duration_min = 400;
  config.group_duration_max = 800;
  const ScenarioData data = GenerateScenario(config, 106);
  const auto exact = Cmc(data.db, data.query);
  ASSERT_FALSE(exact.empty());

  Mc2Options options;
  options.theta = 0.8;
  const Mc2Accuracy acc =
      MeasureMc2Accuracy(data.db, data.query, options, exact);
  EXPECT_GT(acc.reported, 0u);
  EXPECT_GT(acc.false_positive_pct, 0.0)
      << "MC2 without the lifetime constraint should over-report";
}

TEST(IntegrationTest, CliStyleWorkflowThroughCsv) {
  // Generate -> save -> load -> discover, as convoy_cli wires it together.
  ScenarioConfig config = TaxiLikeConfig(0.4);
  config.num_objects = 80;
  config.query.k = 100;
  config.group_duration_min = 120;
  config.group_duration_max = 200;
  const ScenarioData data = GenerateScenario(config, 107);

  const std::string path = ::testing::TempDir() + "/convoy_integration.csv";
  ASSERT_TRUE(SaveTrajectoriesCsv(data.db, path));
  const CsvLoadResult loaded = LoadTrajectoriesCsv(path);
  ASSERT_TRUE(loaded.ok);

  const auto from_disk = Cuts(loaded.db, data.query);
  const auto in_memory = Cuts(data.db, data.query);
  // CSV stores full double precision via operator<<? No: default precision.
  // The tolerance-free comparison still holds because discovery depends on
  // distances at far coarser scales than the round-trip error.
  EXPECT_EQ(from_disk.size(), in_memory.size());
}

}  // namespace
}  // namespace convoy
