#include "geom/box.h"

#include <gtest/gtest.h>

#include <limits>

namespace convoy {
namespace {

TEST(BoxTest, DefaultIsEmpty) {
  Box b;
  EXPECT_TRUE(b.Empty());
}

TEST(BoxTest, ExtendMakesNonEmpty) {
  Box b;
  b.Extend(Point(1, 2));
  EXPECT_FALSE(b.Empty());
  EXPECT_TRUE(b.Contains(Point(1, 2)));
  EXPECT_FALSE(b.Contains(Point(1.1, 2)));
}

TEST(BoxTest, ExtendGrowsToCoverAllPoints) {
  Box b;
  b.Extend(Point(0, 0));
  b.Extend(Point(10, -5));
  b.Extend(Point(-3, 8));
  EXPECT_TRUE(b.Contains(Point(0, 0)));
  EXPECT_TRUE(b.Contains(Point(10, -5)));
  EXPECT_TRUE(b.Contains(Point(-3, 8)));
  EXPECT_TRUE(b.Contains(Point(5, 0)));
  EXPECT_FALSE(b.Contains(Point(11, 0)));
  EXPECT_EQ(b.min(), Point(-3, -5));
  EXPECT_EQ(b.max(), Point(10, 8));
}

TEST(BoxTest, OfSegmentNormalizesCorners) {
  const Box b = Box::Of(Segment(Point(5, 1), Point(2, 7)));
  EXPECT_EQ(b.min(), Point(2, 1));
  EXPECT_EQ(b.max(), Point(5, 7));
}

TEST(BoxTest, OfTimedSegment) {
  const Box b =
      Box::Of(TimedSegment(TimedPoint(3, 4, 0), TimedPoint(1, 2, 5)));
  EXPECT_EQ(b.min(), Point(1, 2));
  EXPECT_EQ(b.max(), Point(3, 4));
}

TEST(BoxTest, ExtendWithBox) {
  Box a(Point(0, 0), Point(1, 1));
  Box b(Point(5, 5), Point(6, 6));
  a.Extend(b);
  EXPECT_EQ(a.min(), Point(0, 0));
  EXPECT_EQ(a.max(), Point(6, 6));
}

TEST(BoxTest, ExtendWithEmptyBoxIsNoOp) {
  Box a(Point(0, 0), Point(1, 1));
  a.Extend(Box());
  EXPECT_EQ(a.min(), Point(0, 0));
  EXPECT_EQ(a.max(), Point(1, 1));
}

TEST(DminTest, OverlappingBoxesIsZero) {
  const Box a(Point(0, 0), Point(5, 5));
  const Box b(Point(3, 3), Point(8, 8));
  EXPECT_DOUBLE_EQ(Dmin(a, b), 0.0);
}

TEST(DminTest, TouchingBoxesIsZero) {
  const Box a(Point(0, 0), Point(5, 5));
  const Box b(Point(5, 0), Point(8, 5));
  EXPECT_DOUBLE_EQ(Dmin(a, b), 0.0);
}

TEST(DminTest, HorizontalGap) {
  const Box a(Point(0, 0), Point(1, 10));
  const Box b(Point(4, 0), Point(5, 10));
  EXPECT_DOUBLE_EQ(Dmin(a, b), 3.0);
}

TEST(DminTest, DiagonalGap) {
  const Box a(Point(0, 0), Point(1, 1));
  const Box b(Point(4, 5), Point(6, 7));
  EXPECT_DOUBLE_EQ(Dmin(a, b), 5.0);  // dx=3, dy=4
}

TEST(DminTest, Symmetric) {
  const Box a(Point(0, 0), Point(1, 1));
  const Box b(Point(10, -3), Point(12, -2));
  EXPECT_DOUBLE_EQ(Dmin(a, b), Dmin(b, a));
}

TEST(DminTest, EmptyBoxIsInfinitelyFar) {
  const Box a(Point(0, 0), Point(1, 1));
  EXPECT_EQ(Dmin(a, Box()), std::numeric_limits<double>::infinity());
  EXPECT_EQ(Dmin(Box(), a), std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace convoy
