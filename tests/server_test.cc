#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/streaming.h"
#include "datagen/stream_feed.h"
#include "parallel/service_thread.h"
#include "server/client.h"
#include "server/session.h"

namespace convoy::server {
namespace {

// ---------------------------------------------------------------------------
// IngestStream against a recording StreamSink — the session state machine
// without a network.

class RecordingSink : public StreamSink {
 public:
  void SendAck(uint64_t, const AckMsg& ack) override {
    std::lock_guard<std::mutex> lock(mu_);
    acks_.push_back(ack);
    cv_.notify_all();
  }

  void SendEvent(const EventMsg& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }

  /// Blocks until `n` acks have arrived, then returns a copy.
  std::vector<AckMsg> WaitForAcks(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return acks_.size() >= n; });
    return acks_;
  }

  std::vector<EventMsg> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<AckMsg> acks_;
  std::vector<EventMsg> events_;
};

IngestBeginMsg MakeBegin(uint64_t stream_id, uint32_t m, int64_t k, double e,
                         int64_t carry_forward = 0) {
  IngestBeginMsg begin;
  begin.stream_id = stream_id;
  begin.m = m;
  begin.k = k;
  begin.e = e;
  begin.carry_forward_ticks = carry_forward;
  return begin;
}

WorkItem BatchItem(uint64_t seq, Tick tick,
                   std::vector<PositionReport> rows) {
  WorkItem item;
  item.kind = WorkItem::Kind::kBatch;
  item.seq = seq;
  item.tick = tick;
  item.rows = std::move(rows);
  return item;
}

WorkItem EndTickItem(uint64_t seq, Tick tick) {
  WorkItem item;
  item.kind = WorkItem::Kind::kEndTick;
  item.seq = seq;
  item.tick = tick;
  return item;
}

WorkItem FinishItem(uint64_t seq) {
  WorkItem item;
  item.kind = WorkItem::Kind::kFinish;
  item.seq = seq;
  return item;
}

/// Submits with a spin on flow control — tests want every item accepted.
void MustSubmit(IngestStream& stream, WorkItem item) {
  while (stream.Submit(item) != PushResult::kAccepted) {
    std::this_thread::yield();
  }
}

/// Replays a feed through a local StreamingCmc and returns every closed
/// convoy in emission order — the sequence the session's kConvoyClosed
/// events must match bit-identically.
std::vector<Convoy> LocalReplay(const StreamFeed& feed,
                                Tick carry_forward = 0) {
  StreamingCmc::Options options;
  options.carry_forward_ticks = carry_forward;
  StreamingCmc stream(feed.query, options);
  std::vector<Convoy> closed;
  for (const FeedTick& tick : feed.ticks) {
    EXPECT_TRUE(stream.BeginTick(tick.tick).ok());
    for (const auto& batch : tick.batches) {
      for (const FeedRow& row : batch) {
        EXPECT_TRUE(stream.Report(row.id, row.pos).ok());
      }
    }
    const auto result = stream.EndTick();
    EXPECT_TRUE(result.ok());
    closed.insert(closed.end(), result->begin(), result->end());
  }
  const auto final_result = stream.Finish();
  EXPECT_TRUE(final_result.ok());
  closed.insert(closed.end(), final_result->begin(), final_result->end());
  return closed;
}

std::vector<PositionReport> ToWire(const std::vector<FeedRow>& rows) {
  std::vector<PositionReport> wire;
  wire.reserve(rows.size());
  for (const FeedRow& row : rows) {
    wire.push_back(PositionReport{row.id, row.pos.x, row.pos.y});
  }
  return wire;
}

TEST(IngestStreamTest, EventsBitIdenticalToLocalReplay) {
  StreamFeedConfig config;
  config.num_objects = 18;
  config.ticks = 12;
  config.batch_rows = 5;
  config.dropout = 0.1;
  config.leave_prob = 0.05;
  config.rejoin_prob = 0.4;
  const StreamFeed feed = GenerateStreamFeed(config, 99);

  RecordingSink sink;
  size_t items = 0;
  {
    IngestStream stream(MakeBegin(1, static_cast<uint32_t>(feed.query.m),
                                  feed.query.k, feed.query.e),
                        /*ring_capacity=*/8, &sink, nullptr);
    uint64_t seq = 0;
    for (const FeedTick& tick : feed.ticks) {
      for (const auto& batch : tick.batches) {
        MustSubmit(stream, BatchItem(++seq, tick.tick, ToWire(batch)));
        ++items;
      }
      MustSubmit(stream, EndTickItem(++seq, tick.tick));
      ++items;
    }
    MustSubmit(stream, FinishItem(++seq));
    ++items;
    const std::vector<AckMsg> acks = sink.WaitForAcks(items);
    for (const AckMsg& ack : acks) EXPECT_EQ(ack.code, 0) << ack.message;
  }  // destructor drains + joins the worker

  const std::vector<EventMsg> events = sink.events();
  ASSERT_FALSE(events.empty());

  // One kTick event per feed tick, in order; kStreamEnd is last.
  std::vector<Tick> tick_events;
  std::vector<Convoy> closed;
  std::set<std::vector<ObjectId>> seen_new;
  for (const EventMsg& event : events) {
    switch (static_cast<EventKind>(event.kind)) {
      case EventKind::kTick:
        tick_events.push_back(event.tick);
        break;
      case EventKind::kConvoyNew:
        seen_new.insert(event.convoy.objects);
        break;
      case EventKind::kConvoyExtended:
        // An extension must extend a convoy previously announced as new.
        EXPECT_TRUE(seen_new.count(event.convoy.objects))
            << "extended before new";
        break;
      case EventKind::kConvoyClosed:
        closed.push_back(event.convoy);
        break;
      case EventKind::kStreamEnd:
        EXPECT_EQ(&event, &events.back()) << "kStreamEnd not last";
        break;
      case EventKind::kGap:
        ADD_FAILURE() << "direct sink never drops events";
        break;
    }
  }
  ASSERT_EQ(tick_events.size(), feed.ticks.size());
  for (size_t i = 0; i < feed.ticks.size(); ++i) {
    EXPECT_EQ(tick_events[i], feed.ticks[i].tick);
  }

  // The acceptance bar: closed-convoy events match the batch replay
  // bit-identically (same convoys, same emission order).
  EXPECT_EQ(closed, LocalReplay(feed));
}

TEST(IngestStreamTest, WrongTickBatchNakedAndRecoverable) {
  RecordingSink sink;
  IngestStream stream(MakeBegin(1, 2, 2, 1.0), 8, &sink, nullptr);
  MustSubmit(stream, BatchItem(1, 0, {{1, 0, 0}, {2, 0, 0.5}}));
  MustSubmit(stream, EndTickItem(2, 0));
  // Tick 0 is already processed — a batch for it must NAK (ticks are
  // strictly increasing) without killing the session.
  MustSubmit(stream, BatchItem(3, 0, {{1, 0, 0}}));
  // A batch for an open tick must match that tick.
  MustSubmit(stream, BatchItem(4, 1, {{1, 0, 0}, {2, 0, 0.5}}));
  MustSubmit(stream, BatchItem(5, 2, {{1, 9, 9}}));
  MustSubmit(stream, EndTickItem(6, 1));
  MustSubmit(stream, FinishItem(7));
  const std::vector<AckMsg> acks = sink.WaitForAcks(7);

  EXPECT_EQ(acks[0].code, 0);
  EXPECT_EQ(acks[0].accepted, 2u);
  EXPECT_EQ(acks[1].code, 0);
  EXPECT_NE(acks[2].code, 0);  // replayed tick
  EXPECT_EQ(acks[2].retryable, 0);
  EXPECT_EQ(acks[3].code, 0);
  EXPECT_NE(acks[4].code, 0);  // tick 2 while tick 1 is open
  EXPECT_EQ(acks[5].code, 0);
  EXPECT_EQ(acks[6].code, 0);  // finish succeeds — session recovered

  // The convoy over the two good ticks closed at Finish.
  std::vector<Convoy> closed;
  for (const EventMsg& event : sink.events()) {
    if (static_cast<EventKind>(event.kind) == EventKind::kConvoyClosed) {
      closed.push_back(event.convoy);
    }
  }
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].objects, (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(closed[0].start_tick, 0);
  EXPECT_EQ(closed[0].end_tick, 1);
}

TEST(IngestStreamTest, ItemsAfterFinishNaked) {
  RecordingSink sink;
  IngestStream stream(MakeBegin(1, 2, 2, 1.0), 8, &sink, nullptr);
  MustSubmit(stream, FinishItem(1));
  MustSubmit(stream, BatchItem(2, 0, {{1, 0, 0}}));
  MustSubmit(stream, EndTickItem(3, 0));
  const std::vector<AckMsg> acks = sink.WaitForAcks(3);
  EXPECT_EQ(acks[0].code, 0);
  EXPECT_NE(acks[1].code, 0);
  EXPECT_EQ(acks[1].retryable, 0);  // a real error, not flow control
  EXPECT_NE(acks[2].code, 0);
}

TEST(IngestStreamTest, RowLevelRejectsCountedBatchStillAccepted) {
  RecordingSink sink;
  IngestStream stream(MakeBegin(1, 2, 2, 1.0), 8, &sink, nullptr);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  MustSubmit(stream,
             BatchItem(1, 0, {{1, 0, 0}, {2, nan, 0.5}, {3, 0, 1.0}}));
  const std::vector<AckMsg> acks = sink.WaitForAcks(1);
  EXPECT_EQ(acks[0].code, 0);  // the batch is accepted...
  EXPECT_EQ(acks[0].accepted, 2u);
  EXPECT_EQ(acks[0].rejected, 1u);  // ...minus the non-finite row
}

/// A sink whose SendAck blocks until released — freezes the worker between
/// ring pops so ring-full backpressure can be forced deterministically.
class GateSink : public RecordingSink {
 public:
  void SendAck(uint64_t stream_id, const AckMsg& ack) override {
    {
      std::unique_lock<std::mutex> lock(gate_mu_);
      gate_cv_.wait(lock, [&] { return open_; });
    }
    RecordingSink::SendAck(stream_id, ack);
  }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(gate_mu_);
      open_ = true;
    }
    gate_cv_.notify_all();
  }

 private:
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  bool open_ = false;
};

TEST(IngestStreamTest, FullRingRefusesSubmitThenRecovers) {
  GateSink sink;
  IngestStream stream(MakeBegin(1, 2, 2, 1.0), /*ring_capacity=*/1, &sink,
                      nullptr);
  // Item 1: popped by the worker, which then blocks in the gated SendAck.
  MustSubmit(stream, BatchItem(1, 0, {{1, 0, 0}}));
  // Item 2: sits in the ring (capacity 1) once the worker holds item 1.
  MustSubmit(stream, EndTickItem(2, 0));
  // With the worker frozen and the ring full, Submit must refuse with
  // kFull — this is the signal the server turns into a retryable NAK.
  WorkItem overflow = FinishItem(3);
  while (stream.Submit(overflow) == PushResult::kAccepted) {
    // Raced the worker between pops; it will block at the gate within two
    // items, after which pushes must start failing. Re-arm and retry.
    overflow = FinishItem(overflow.seq + 1);
  }
  EXPECT_EQ(stream.Submit(overflow), PushResult::kFull);
  sink.OpenGate();
  stream.Close();
  // A closed stream refuses with kClosed — the server NAKs this
  // non-retryable so clients stop resending.
  EXPECT_EQ(stream.Submit(FinishItem(99)), PushResult::kClosed);
}

TEST(IngestStreamTest, SnapshotEngineMatchesAcceptedRows) {
  RecordingSink sink;
  IngestStream stream(MakeBegin(1, 2, 2, 1.0), 8, &sink, nullptr);
  uint64_t seq = 0;
  size_t items = 0;
  for (Tick t = 0; t < 4; ++t) {
    MustSubmit(stream,
               BatchItem(++seq, t,
                         {{1, 0, 0.1 * static_cast<double>(t)},
                          {2, 0.5, 0.1 * static_cast<double>(t)},
                          {7, 40.0 + static_cast<double>(t) * 5, 0}}));
    MustSubmit(stream, EndTickItem(++seq, t));
    items += 2;
  }
  sink.WaitForAcks(items);  // rows are in the table once acked

  const std::shared_ptr<const ConvoyEngine> engine = stream.SnapshotEngine();
  ASSERT_NE(engine, nullptr);
  // Same snapshot again between batches: the cached build is reused.
  EXPECT_EQ(engine.get(), stream.SnapshotEngine().get());

  const auto plan = engine->Prepare(stream.query());
  ASSERT_TRUE(plan.ok());
  auto result = engine->Execute(*plan);
  ASSERT_TRUE(result.ok());
  const std::vector<Convoy> convoys = std::move(*result).TakeConvoys();
  ASSERT_EQ(convoys.size(), 1u);
  EXPECT_EQ(convoys[0].objects, (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(convoys[0].start_tick, 0);
  EXPECT_EQ(convoys[0].end_tick, 3);
}

// ---------------------------------------------------------------------------
// Full-stack tests over real sockets.

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.port = 0;  // ephemeral
    server_ = std::make_unique<ConvoyServer>(options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  std::unique_ptr<ConvoyClient> Connect() {
    auto client = ConvoyClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(*client) : nullptr;
  }

  std::unique_ptr<ConvoyServer> server_;
};

TEST_F(ServerTest, EndToEndEventsMatchLocalReplay) {
  StreamFeedConfig config;
  config.num_objects = 16;
  config.ticks = 10;
  config.batch_rows = 6;
  config.dropout = 0.05;
  const StreamFeed feed = GenerateStreamFeed(config, 7);

  auto ingest = Connect();
  ASSERT_NE(ingest, nullptr);
  ASSERT_TRUE(ingest->IngestBegin(5, feed.query).ok());

  auto subscriber = Connect();
  ASSERT_NE(subscriber, nullptr);
  ASSERT_TRUE(subscriber->Subscribe(5).ok());

  for (const FeedTick& tick : feed.ticks) {
    for (const auto& batch : tick.batches) {
      const auto ack =
          ingest->ReportBatch(tick.tick, ToWire(batch), /*max_retries=*/100);
      ASSERT_TRUE(ack.ok());
      ASSERT_EQ(ack->code, 0) << ack->message;
    }
    const auto ack = ingest->EndTick(tick.tick, /*max_retries=*/100);
    ASSERT_TRUE(ack.ok());
    ASSERT_EQ(ack->code, 0) << ack->message;
  }
  const auto fin = ingest->Finish(/*max_retries=*/100);
  ASSERT_TRUE(fin.ok());
  ASSERT_EQ(fin->code, 0) << fin->message;

  std::vector<Convoy> closed;
  for (;;) {
    const auto event = subscriber->NextEvent();
    ASSERT_TRUE(event.ok()) << event.status();
    if (static_cast<EventKind>(event->kind) == EventKind::kConvoyClosed) {
      closed.push_back(event->convoy);
    }
    if (static_cast<EventKind>(event->kind) == EventKind::kStreamEnd) break;
  }
  EXPECT_EQ(closed, LocalReplay(feed));
}

TEST_F(ServerTest, QueryMatchesLocalEngineAndExplains) {
  auto ingest = Connect();
  ASSERT_NE(ingest, nullptr);
  ConvoyQuery query{2, 3, 1.0};
  ASSERT_TRUE(ingest->IngestBegin(1, query).ok());

  TrajectoryDatabase local_db;
  std::map<ObjectId, std::vector<TimedPoint>> rows;
  for (Tick t = 0; t < 5; ++t) {
    std::vector<PositionReport> batch;
    for (ObjectId id = 1; id <= 3; ++id) {
      const double x = static_cast<double>(id) * 0.4;
      const double y = static_cast<double>(t);
      batch.push_back({id, x, y});
      rows[id].push_back(TimedPoint(x, y, t));
    }
    ASSERT_EQ(ingest->ReportBatch(t, batch, 100)->code, 0);
    ASSERT_EQ(ingest->EndTick(t, 100)->code, 0);
  }
  for (auto& [id, samples] : rows) {
    local_db.Add(Trajectory(id, std::move(samples)));
  }

  const auto result = ingest->Query(1, query, /*algo=*/0, /*explain=*/true);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->code, 0) << result->message;
  EXPECT_FALSE(result->explain.empty());

  ConvoyEngine local_engine(std::move(local_db));
  const auto plan = local_engine.Prepare(query);
  ASSERT_TRUE(plan.ok());
  auto local = local_engine.Execute(*plan);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(result->convoys, std::move(*local).TakeConvoys());

  // Unknown stream and out-of-range algo are typed errors, not closes.
  EXPECT_EQ(ingest->Query(99, query)->code,
            static_cast<uint8_t>(StatusCode::kNotFound));
  EXPECT_NE(ingest->Query(1, query, /*algo=*/200)->code, 0);
  // The connection still works afterwards.
  EXPECT_EQ(ingest->Query(1, query)->code, 0);
}

TEST_F(ServerTest, OneIngestStreamPerConnection) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->IngestBegin(1, ConvoyQuery{2, 2, 1.0}).ok());
  // A second stream on the same connection is refused (batch frames carry
  // no stream id, so ownership must stay unambiguous)...
  const Status second = client->IngestBegin(2, ConvoyQuery{2, 2, 1.0});
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  // ...and so is stealing a stream that a live connection owns.
  auto thief = Connect();
  ASSERT_NE(thief, nullptr);
  EXPECT_EQ(thief->IngestBegin(1, ConvoyQuery{2, 2, 1.0}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, StreamSurvivesProducerAndIsAdoptable) {
  ConvoyQuery query{2, 2, 1.0};
  {
    auto first = Connect();
    ASSERT_NE(first, nullptr);
    ASSERT_TRUE(first->IngestBegin(3, query).ok());
    ASSERT_EQ(first->ReportBatch(0, {{1, 0, 0}, {2, 0, 0.5}}, 100)->code, 0);
    ASSERT_EQ(first->EndTick(0, 100)->code, 0);
  }  // producer drops without Finish

  // The rows stay queryable from another connection...
  auto second = Connect();
  ASSERT_NE(second, nullptr);
  for (int attempt = 0;; ++attempt) {
    // The server reaps the dead owner lazily; adoption may need a retry
    // while the old connection's teardown is still in flight.
    const Status adopted = second->IngestBegin(3, query);
    if (adopted.ok()) break;
    ASSERT_LT(attempt, 100) << adopted;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // ...and the adopted session continues where the stream left off.
  ASSERT_EQ(second->ReportBatch(1, {{1, 0, 0}, {2, 0, 0.5}}, 100)->code, 0);
  ASSERT_EQ(second->EndTick(1, 100)->code, 0);
  ASSERT_EQ(second->Finish(100)->code, 0);

  const auto result = second->Query(3, query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->code, 0) << result->message;
  ASSERT_EQ(result->convoys.size(), 1u);
  EXPECT_EQ(result->convoys[0].start_tick, 0);
  EXPECT_EQ(result->convoys[0].end_tick, 1);
}

TEST_F(ServerTest, StatsJsonCarriesServerCounters) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->IngestBegin(1, ConvoyQuery{2, 2, 1.0}).ok());
  ASSERT_EQ(client->ReportBatch(0, {{1, 0, 0}}, 100)->code, 0);
  ASSERT_EQ(client->EndTick(0, 100)->code, 0);
  ASSERT_EQ(client->Finish(100)->code, 0);

  const auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_NE(stats->find("\"schema\":\"convoy-server-stats-v1\""),
            std::string::npos);
  EXPECT_NE(stats->find("server.batches_accepted"), std::string::npos);
  EXPECT_NE(stats->find("server.events_emitted"), std::string::npos);
  EXPECT_NE(stats->find("server.active_sessions_max"), std::string::npos);
  // In-process view agrees on the schema line.
  EXPECT_NE(server_->StatsJson().find("convoy-server-stats-v1"),
            std::string::npos);
}

TEST_F(ServerTest, HandshakeVersionMismatchRejected) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);

  HelloMsg hello;
  hello.version = 99;
  ASSERT_TRUE(WriteFrame(fd, Encode(hello)).ok());
  const auto frame = ReadFrame(fd);
  ASSERT_TRUE(frame.ok());
  const auto ack = DecodeHelloAck(*frame);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->accepted, 0);
  EXPECT_EQ(ack->version, kProtocolVersion);
  EXPECT_FALSE(ack->message.empty());
  // The server closes the connection after a rejected handshake.
  EXPECT_FALSE(ReadFrame(fd).ok());
  ::close(fd);
}

TEST_F(ServerTest, RequestsBeforeHandshakeRejected) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  // First frame is not kHello — the server must hang up, not crash.
  ASSERT_TRUE(WriteFrame(fd, Encode(StatsRequestMsg{})).ok());
  EXPECT_FALSE(ReadFrame(fd).ok());
  ::close(fd);
}

TEST_F(ServerTest, SubscriberVanishingMidStreamDoesNotKillServer) {
  // Regression: event fan-out to a subscriber that hung up used to raise
  // SIGPIPE on the second write after the peer's RST and terminate the
  // whole process. With MSG_NOSIGNAL the dead peer is an EPIPE status and
  // the ingest session keeps flowing.
  auto ingest = Connect();
  ASSERT_NE(ingest, nullptr);
  ASSERT_TRUE(ingest->IngestBegin(7, ConvoyQuery{2, 2, 1.0}).ok());

  {
    auto subscriber = Connect();
    ASSERT_NE(subscriber, nullptr);
    ASSERT_TRUE(subscriber->Subscribe(7).ok());
    ASSERT_EQ(ingest->ReportBatch(0, {{1, 0, 0}, {2, 0, 0.5}}, 100)->code, 0);
    ASSERT_EQ(ingest->EndTick(0, 100)->code, 0);
  }  // subscriber's socket closes abruptly, subscription still registered

  // Every tick pushes several event frames at the dead subscriber; the
  // stream must stay healthy through all of them.
  for (Tick t = 1; t <= 20; ++t) {
    ASSERT_EQ(ingest->ReportBatch(t, {{1, 0, 0}, {2, 0, 0.5}}, 100)->code, 0);
    ASSERT_EQ(ingest->EndTick(t, 100)->code, 0);
  }
  ASSERT_EQ(ingest->Finish(100)->code, 0);
  // The daemon as a whole is alive: a fresh connection still works.
  auto prober = Connect();
  ASSERT_NE(prober, nullptr);
  EXPECT_TRUE(prober->Stats().ok());
}

TEST_F(ServerTest, TruncatedFrameNakCarriesItsSequenceNumber) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  ASSERT_TRUE(WriteFrame(fd, Encode(HelloMsg{})).ok());
  ASSERT_TRUE(ReadFrame(fd).ok());  // kHelloAck

  // A ReportBatch whose rows are chopped off decodes to kDataError; the
  // NAK must still carry the frame's sequence number so a pipelined
  // client blocked in AwaitAck(seq) surfaces the error instead of
  // spinning until the connection drops.
  ReportBatchMsg batch;
  batch.seq = 42;
  batch.tick = 0;
  batch.rows = {{1, 0, 0}, {2, 0, 0.5}};
  std::string truncated = Encode(batch);
  truncated.resize(truncated.size() - 4);
  ASSERT_TRUE(WriteFrame(fd, truncated).ok());

  const auto frame = ReadFrame(fd);
  ASSERT_TRUE(frame.ok()) << frame.status();
  const auto nak = DecodeAck(*frame);
  ASSERT_TRUE(nak.ok()) << nak.status();
  EXPECT_EQ(nak->seq, 42u);
  EXPECT_NE(nak->code, 0);
  EXPECT_EQ(nak->retryable, 0);
  ::close(fd);
}

TEST_F(ServerTest, ShutdownWithLiveClientsIsClean) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->IngestBegin(1, ConvoyQuery{2, 2, 1.0}).ok());
  ASSERT_EQ(client->ReportBatch(0, {{1, 0, 0}}, 100)->code, 0);
  // Shut down with an open tick and a connected client: must drain the
  // worker and join every thread without hanging. TearDown verifies
  // idempotence by shutting down again.
  server_->Shutdown();
}

// ---------------------------------------------------------------------------
// Client/server resilience: deadlines, idle reaping, load shedding, slow
// subscribers. These run their own servers with non-default options.

/// Extracts one counter value from the server's StatsJson.
uint64_t StatsCounter(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const size_t pos = json.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + key.size(), nullptr, 10);
}

TEST(ClientDeadlineTest, ConnectDeadlineExpiresOnSilentServer) {
  // A listener that never accepts: the TCP handshake completes (backlog),
  // the client's kHello goes out, and no HelloAck ever comes back.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  ClientOptions options;
  options.deadline_ms = 100;
  const auto client =
      ConvoyClient::Connect("127.0.0.1", ntohs(addr.sin_port), options);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kDeadlineExceeded);
  ::close(fd);
}

TEST(ClientDeadlineTest, NextEventDeadlineExpiresOnQuietStream) {
  ServerOptions options;
  options.port = 0;
  ConvoyServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto producer = ConvoyClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE((*producer)->IngestBegin(1, ConvoyQuery{2, 2, 1.0}).ok());

  ClientOptions sub_options;
  sub_options.deadline_ms = 100;
  auto subscriber =
      ConvoyClient::Connect("127.0.0.1", server.port(), sub_options);
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE((*subscriber)->Subscribe(1).ok());
  // The stream emits nothing — the deadline, not a hang, ends the wait.
  const auto event = (*subscriber)->NextEvent();
  EXPECT_FALSE(event.ok());
  EXPECT_EQ(event.status().code(), StatusCode::kDeadlineExceeded);
  server.Shutdown();
}

TEST(IdleReapTest, IdleConnectionReapedSubscriberExempt) {
  ServerOptions options;
  options.port = 0;
  options.idle_timeout_ms = 100;
  ConvoyServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // A connection that handshakes and then goes silent gets reaped...
  auto idle = ConvoyClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(idle.ok());

  // ...while a subscriber may stay quiet forever.
  auto producer = ConvoyClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE((*producer)->IngestBegin(1, ConvoyQuery{2, 2, 1.0}).ok());
  auto subscriber = ConvoyClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE((*subscriber)->Subscribe(1).ok());

  uint64_t reaped = 0;
  for (int i = 0; i < 200 && reaped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    reaped = StatsCounter(server.StatsJson(), "server.idle_reaped");
  }
  EXPECT_GT(reaped, 0u);

  // The subscriber's connection outlived several idle windows.
  EXPECT_TRUE((*subscriber)->Stats().ok());
  server.Shutdown();
}

TEST(LoadShedTest, OverloadNaksRetryableAndStreamSurvives) {
  ServerOptions options;
  options.port = 0;
  options.load_shed_high_water = 1;
  ConvoyServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto connected = ConvoyClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  ConvoyClient& client = **connected;
  ASSERT_TRUE(client.IngestBegin(1, ConvoyQuery{2, 2, 1.0}).ok());

  // Park the worker in an expensive DBSCAN tick, then pipeline batches at
  // it: with the high water at one queued item, the backlog must shed.
  std::vector<PositionReport> crowd;
  for (ObjectId id = 1; id <= 600; ++id) {
    crowd.push_back({id, static_cast<double>(id % 25),
                     static_cast<double>(id / 25)});
  }
  ASSERT_EQ(client.ReportBatch(0, crowd, 100)->code, 0);
  std::vector<uint64_t> seqs;
  seqs.push_back(client.SendEndTick(0));
  for (int i = 0; i < 40; ++i) {
    seqs.push_back(client.SendBatch(1, {{1, 0, 0}, {2, 0, 0.5}}));
  }
  size_t shed = 0;
  for (const uint64_t seq : seqs) {
    const auto ack = client.AwaitAck(seq);
    ASSERT_TRUE(ack.ok()) << ack.status();
    if (ack->code != 0) {
      // Every NAK here is load shedding / flow control: retryable.
      EXPECT_EQ(ack->retryable, 1) << ack->message;
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(StatsCounter(server.StatsJson(), "server.load_shed"), 0u);

  // Shedding is backpressure, not failure: retries complete the stream.
  ASSERT_EQ(client.EndTick(1, 100)->code, 0);
  ASSERT_EQ(client.Finish(100)->code, 0);
  server.Shutdown();
}

TEST(SlowSubscriberTest, OverflowDropsEventsWithGapMarker) {
  ServerOptions options;
  options.port = 0;
  options.subscriber_queue_capacity = 1;
  ConvoyServer server(options);
  ASSERT_TRUE(server.Start().ok());

  StreamFeedConfig config;
  config.num_objects = 12;
  config.ticks = 300;
  config.batch_rows = 12;
  const StreamFeed feed = GenerateStreamFeed(config, 7);

  ClientOptions sub_options;
  sub_options.deadline_ms = 500;
  auto subscriber =
      ConvoyClient::Connect("127.0.0.1", server.port(), sub_options);
  ASSERT_TRUE(subscriber.ok());

  auto producer = ConvoyClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE((*producer)->IngestBegin(1, feed.query).ok());
  ASSERT_TRUE((*subscriber)->Subscribe(1).ok());

  // The subscriber reads nothing during the whole ingest: with a
  // one-element event queue the per-tick event bursts overflow it, and
  // once the socket buffers fill the sender can't drain at all.
  for (const FeedTick& tick : feed.ticks) {
    for (const auto& batch : tick.batches) {
      ASSERT_EQ((*producer)->ReportBatch(tick.tick, ToWire(batch), 100)->code,
                0);
    }
    ASSERT_EQ((*producer)->EndTick(tick.tick, 100)->code, 0);
  }
  ASSERT_EQ((*producer)->Finish(100)->code, 0);

  EXPECT_GT(StatsCounter(server.StatsJson(), "server.events_dropped"), 0u);

  // Now drain: the losses were replaced by kGap markers carrying counts,
  // not silently swallowed. (kStreamEnd itself may have been dropped, so
  // the deadline — not a hang — ends the drain either way.)
  uint64_t gap_events = 0;
  uint64_t gap_total = 0;
  for (;;) {
    const auto event = (*subscriber)->NextEvent();
    if (!event.ok()) {
      EXPECT_EQ(event.status().code(), StatusCode::kDeadlineExceeded);
      break;
    }
    if (static_cast<EventKind>(event->kind) == EventKind::kGap) {
      ++gap_events;
      gap_total += event->live_candidates;
    }
    if (static_cast<EventKind>(event->kind) == EventKind::kStreamEnd) break;
  }
  EXPECT_GT(gap_events, 0u);
  EXPECT_GT(gap_total, 0u);
  // A gap marker never claims more losses than the server counted (the
  // final burst's marker may still be unemitted, so <=, not ==).
  EXPECT_LE(gap_total,
            StatsCounter(server.StatsJson(), "server.events_dropped"));
  server.Shutdown();
}

}  // namespace
}  // namespace convoy::server
