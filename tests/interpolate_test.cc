#include "traj/interpolate.h"

#include <gtest/gtest.h>

namespace convoy {
namespace {

TEST(InterpolateTest, ExactSampleReturned) {
  Trajectory traj(0);
  traj.Append(0, 0, 0);
  traj.Append(10, 0, 10);
  EXPECT_EQ(*InterpolateAt(traj, 0), Point(0, 0));
  EXPECT_EQ(*InterpolateAt(traj, 10), Point(10, 0));
}

TEST(InterpolateTest, LinearBetweenSamples) {
  Trajectory traj(0);
  traj.Append(0, 0, 0);
  traj.Append(10, 20, 10);
  EXPECT_EQ(*InterpolateAt(traj, 5), Point(5, 10));
  EXPECT_EQ(*InterpolateAt(traj, 1), Point(1, 2));
  EXPECT_EQ(*InterpolateAt(traj, 9), Point(9, 18));
}

TEST(InterpolateTest, VirtualPointAtMissingTick) {
  // The CMC virtual-point case: o3 sampled at t=1 and t=3, queried at t=2.
  Trajectory traj(3);
  traj.Append(0, 0, 1);
  traj.Append(4, 2, 3);
  EXPECT_EQ(*InterpolateAt(traj, 2), Point(2, 1));
}

TEST(InterpolateTest, NoExtrapolationOutsideLifetime) {
  Trajectory traj(0);
  traj.Append(0, 0, 5);
  traj.Append(10, 0, 10);
  EXPECT_FALSE(InterpolateAt(traj, 4).has_value());
  EXPECT_FALSE(InterpolateAt(traj, 11).has_value());
}

TEST(InterpolateTest, EmptyTrajectory) {
  Trajectory traj(0);
  EXPECT_FALSE(InterpolateAt(traj, 0).has_value());
}

TEST(InterpolateTest, UnevenGaps) {
  Trajectory traj(0);
  traj.Append(0, 0, 0);
  traj.Append(3, 0, 3);
  traj.Append(3, 10, 13);
  EXPECT_EQ(*InterpolateAt(traj, 2), Point(2, 0));
  EXPECT_EQ(*InterpolateAt(traj, 8), Point(3, 5));
}

TEST(DensifyTest, FillsEveryTick) {
  Trajectory traj(9);
  traj.Append(0, 0, 0);
  traj.Append(4, 8, 4);
  const Trajectory dense = Densify(traj);
  EXPECT_EQ(dense.id(), 9u);
  EXPECT_EQ(dense.Size(), 5u);
  for (Tick t = 0; t <= 4; ++t) {
    ASSERT_TRUE(dense.LocationAt(t).has_value());
    EXPECT_EQ(*dense.LocationAt(t),
              Point(static_cast<double>(t), 2.0 * static_cast<double>(t)));
  }
}

TEST(DensifyTest, EmptyStaysEmpty) {
  EXPECT_TRUE(Densify(Trajectory(1)).Empty());
}

TEST(DensifyTest, IdempotentOnDensePath) {
  Trajectory traj(2);
  for (Tick t = 0; t < 10; ++t) {
    traj.Append(static_cast<double>(t), 0.0, t);
  }
  const Trajectory dense = Densify(traj);
  EXPECT_EQ(dense.Size(), traj.Size());
}

}  // namespace
}  // namespace convoy
