#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.h"

namespace convoy {
namespace {

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, ZeroMeansHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::vector<int> out(1, 0);
  pool.ParallelFor(1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = 7;
  });
  EXPECT_EQ(out[0], 7);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t begin, size_t) {
                         if (begin == 0) {
                           throw std::runtime_error("chunk failure");
                         }
                       }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ExceptionFromEveryChunkStillRethrowsOne) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   8, [](size_t, size_t) { throw std::logic_error("all"); }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(8, [&](size_t begin, size_t end) {
    for (size_t outer = begin; outer < end; ++outer) {
      // Re-entrant use of the same pool: must run inline on this worker
      // (or the caller) rather than deadlocking the fixed-size pool.
      pool.ParallelFor(8, [&, outer](size_t b, size_t e) {
        for (size_t inner = b; inner < e; ++inner) {
          hits[outer * 8 + inner].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerCompletes) {
  ThreadPool pool(2);
  std::atomic<int> inner_ran{0};
  std::future<void> inner;
  pool.Submit([&] { inner = pool.Submit([&] { inner_ran.fetch_add(1); }); })
      .wait();
  inner.wait();
  EXPECT_EQ(inner_ran.load(), 1);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("task failure"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, OnWorkerThreadDistinguishesPools) {
  ThreadPool a(1);
  ThreadPool b(1);
  EXPECT_FALSE(a.OnWorkerThread());
  bool a_sees_a = false;
  bool a_sees_b = true;
  a.Submit([&] {
     a_sees_a = a.OnWorkerThread();
     a_sees_b = b.OnWorkerThread();
   }).wait();
  EXPECT_TRUE(a_sees_a);
  EXPECT_FALSE(a_sees_b);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto squares =
      ParallelMap(&pool, 257, [](size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 257u);
  for (size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPoolTest, ParallelMapNullPoolRunsSerially) {
  const auto doubled =
      ParallelMap(nullptr, 10, [](size_t i) { return 2 * i; });
  ASSERT_EQ(doubled.size(), 10u);
  for (size_t i = 0; i < doubled.size(); ++i) EXPECT_EQ(doubled[i], 2 * i);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(0), ThreadPool::HardwareThreads());
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(8), 8u);
}

TEST(ThreadPoolTest, ManySmallParallelForsStress) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(17, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 136u);  // 0 + 1 + ... + 16
  }
}

}  // namespace
}  // namespace convoy
