#include "cluster/dbscan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/random.h"

namespace convoy {
namespace {

// Returns the cluster index containing point i, or -1 for noise.
int ClusterOf(const Clustering& c, size_t i) {
  for (size_t ci = 0; ci < c.clusters.size(); ++ci) {
    if (std::find(c.clusters[ci].begin(), c.clusters[ci].end(), i) !=
        c.clusters[ci].end()) {
      return static_cast<int>(ci);
    }
  }
  return -1;
}

TEST(DbscanTest, EmptyInput) {
  const Clustering c = Dbscan({}, 1.0, 2);
  EXPECT_TRUE(c.clusters.empty());
}

TEST(DbscanTest, SingletonIsNoiseWithMinPts2) {
  const Clustering c = Dbscan({Point(0, 0)}, 1.0, 2);
  EXPECT_TRUE(c.clusters.empty());
}

TEST(DbscanTest, SingletonIsClusterWithMinPts1) {
  const Clustering c = Dbscan({Point(0, 0)}, 1.0, 1);
  ASSERT_EQ(c.clusters.size(), 1u);
}

TEST(DbscanTest, PairWithinEpsFormsClusterMinPts2) {
  // Neighborhood includes the point itself: each has |NH| = 2 >= m.
  const Clustering c = Dbscan({Point(0, 0), Point(0.5, 0)}, 1.0, 2);
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].size(), 2u);
}

TEST(DbscanTest, PairBeyondEpsIsNoise) {
  const Clustering c = Dbscan({Point(0, 0), Point(5, 0)}, 1.0, 2);
  EXPECT_TRUE(c.clusters.empty());
}

TEST(DbscanTest, TwoSeparatedClusters) {
  const std::vector<Point> points = {Point(0, 0),  Point(1, 0), Point(0, 1),
                                     Point(20, 20), Point(21, 20),
                                     Point(20, 21)};
  const Clustering c = Dbscan(points, 2.0, 3);
  ASSERT_EQ(c.clusters.size(), 2u);
  EXPECT_NE(ClusterOf(c, 0), ClusterOf(c, 3));
  EXPECT_EQ(ClusterOf(c, 0), ClusterOf(c, 1));
  EXPECT_EQ(ClusterOf(c, 3), ClusterOf(c, 4));
}

TEST(DbscanTest, ChainIsDensityConnectedArbitraryShape) {
  // A long chain: consecutive gaps of 1, minPts 2 -> one snake-shaped
  // cluster. This is the "arbitrary shape" motivation of Definition 2.
  std::vector<Point> points;
  for (int i = 0; i < 30; ++i) {
    points.emplace_back(static_cast<double>(i), (i % 2) * 0.2);
  }
  const Clustering c = Dbscan(points, 1.1, 2);
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].size(), points.size());
}

TEST(DbscanTest, ChainBreaksWithHighMinPts) {
  // The same chain with minPts 3: interior points have 3 neighbors
  // (self + two), so still one cluster; endpoints become border points.
  std::vector<Point> points;
  for (int i = 0; i < 10; ++i) {
    points.emplace_back(static_cast<double>(i), 0.0);
  }
  const Clustering c = Dbscan(points, 1.1, 3);
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].size(), points.size());
  // With minPts 4 no point has 4 neighbors within 1.1 -> all noise.
  EXPECT_TRUE(Dbscan(points, 1.1, 4).clusters.empty());
}

TEST(DbscanTest, BorderPointJoinsCluster) {
  // Dense core of 3 mutual neighbors plus one border point reachable from
  // a core point but itself not core.
  const std::vector<Point> points = {Point(0, 0), Point(0.5, 0),
                                     Point(0, 0.5), Point(1.3, 0)};
  const Clustering c = Dbscan(points, 1.0, 3);
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].size(), 4u);
}

TEST(DbscanTest, NoisePointExcluded) {
  const std::vector<Point> points = {Point(0, 0), Point(0.5, 0),
                                     Point(0, 0.5), Point(50, 50)};
  const Clustering c = Dbscan(points, 1.0, 3);
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].size(), 3u);
  EXPECT_EQ(ClusterOf(c, 3), -1);
}

TEST(DbscanTest, BridgeMergesClusters) {
  // Two dense blobs joined by a chain of core points -> single cluster.
  std::vector<Point> points = {Point(0, 0), Point(0.5, 0), Point(0, 0.5)};
  points.insert(points.end(),
                {Point(10, 0), Point(10.5, 0), Point(10, 0.5)});
  for (double x = 1.0; x < 10.0; x += 0.5) {
    points.emplace_back(x, 0.0);
    points.emplace_back(x, 0.2);  // keep bridge points core with minPts 3
  }
  const Clustering c = Dbscan(points, 1.0, 3);
  ASSERT_EQ(c.clusters.size(), 1u);
}

TEST(DbscanTest, DuplicatePointsCountTowardDensity) {
  const std::vector<Point> points = {Point(1, 1), Point(1, 1), Point(1, 1)};
  const Clustering c = Dbscan(points, 0.5, 3);
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].size(), 3u);
}

// ------------------------- postcondition properties on random datasets ----

// DBSCAN's defining postconditions (cluster partition over *core* points is
// unique; border/noise rules). Checked against a brute-force analysis.
TEST(DbscanTest, PostconditionsOnRandomData) {
  Rng rng(31337);
  for (int iter = 0; iter < 15; ++iter) {
    std::vector<Point> points;
    const size_t n = 30 + static_cast<size_t>(rng.UniformInt(0, 120));
    for (size_t i = 0; i < n; ++i) {
      // Clumpy distribution so clusters actually form.
      const Point center(rng.Uniform(0, 30), rng.Uniform(0, 30));
      points.push_back(center);
      if (rng.Chance(0.6)) {
        points.emplace_back(center.x + rng.Gaussian(0, 0.5),
                            center.y + rng.Gaussian(0, 0.5));
      }
    }
    const double eps = 1.5;
    const size_t min_pts = 3;
    const Clustering c = Dbscan(points, eps, min_pts);

    // Brute-force core computation.
    std::vector<bool> core(points.size(), false);
    for (size_t i = 0; i < points.size(); ++i) {
      size_t neighbors = 0;
      for (size_t j = 0; j < points.size(); ++j) {
        if (D(points[i], points[j]) <= eps) ++neighbors;
      }
      core[i] = neighbors >= min_pts;
    }

    std::vector<int> label(points.size(), -1);
    for (size_t ci = 0; ci < c.clusters.size(); ++ci) {
      for (const size_t idx : c.clusters[ci]) {
        EXPECT_EQ(label[idx], -1) << "point in two clusters";
        label[idx] = static_cast<int>(ci);
      }
    }

    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = 0; j < points.size(); ++j) {
        if (core[i] && core[j] && D(points[i], points[j]) <= eps) {
          // Two close core points must share a cluster.
          EXPECT_EQ(label[i], label[j]);
        }
      }
      if (label[i] >= 0 && !core[i]) {
        // Border point: must be within eps of a core point of its cluster.
        bool ok = false;
        for (size_t j = 0; j < points.size(); ++j) {
          if (core[j] && label[j] == label[i] &&
              D(points[i], points[j]) <= eps) {
            ok = true;
            break;
          }
        }
        EXPECT_TRUE(ok) << "border point not attached to its cluster core";
      }
      if (label[i] == -1) {
        // Noise: not within eps of any core point.
        for (size_t j = 0; j < points.size(); ++j) {
          if (core[j]) {
            EXPECT_GT(D(points[i], points[j]), eps);
          }
        }
      }
      if (core[i]) {
        EXPECT_GE(label[i], 0) << "core point left unclustered";
      }
    }
  }
}

}  // namespace
}  // namespace convoy
