#include "core/candidate.h"

#include <gtest/gtest.h>

namespace convoy {
namespace {

using Clusters = std::vector<std::vector<ObjectId>>;

TEST(IntersectSortedTest, Basics) {
  EXPECT_EQ(IntersectSorted({1, 2, 3}, {2, 3, 4}),
            (std::vector<ObjectId>{2, 3}));
  EXPECT_TRUE(IntersectSorted({1, 2}, {3, 4}).empty());
  EXPECT_TRUE(IntersectSorted({}, {1}).empty());
}

// Reproduces the paper's Table 2 execution (m=2, k=3):
//  t1: c11 = {1,2,3}           -> candidate v1
//  t2: c12 = {1,2,3,4}         -> v1 = {1,2,3}
//  t3: c13 = {5,6}, c23 = {2,3} -> v1 = {2,3}, new candidate {5,6}
// After t3, v1 has lifetime 3 and is a convoy once it dies or flushes.
TEST(CandidateTrackerTest, PaperTable2Execution) {
  CandidateTracker tracker(2, 3);
  std::vector<Candidate> done;

  tracker.Advance(Clusters{{1, 2, 3}}, 1, 1, 1, &done);
  EXPECT_TRUE(done.empty());
  tracker.Advance(Clusters{{1, 2, 3, 4}}, 2, 2, 1, &done);
  EXPECT_TRUE(done.empty());
  tracker.Advance(Clusters{{5, 6}, {2, 3}}, 3, 3, 1, &done);
  EXPECT_TRUE(done.empty());

  tracker.Flush(&done);
  // The surviving lineage {2,3} spans t1..t3 (lifetime 3); also {1,2,3}
  // spanning t1..t2 dies at t3 with lifetime 2 < k, and {5,6} has
  // lifetime 1 < k.
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].objects, (std::vector<ObjectId>{2, 3}));
  EXPECT_EQ(done[0].start_tick, 1);
  EXPECT_EQ(done[0].end_tick, 3);
  EXPECT_EQ(done[0].lifetime, 3);
}

TEST(CandidateTrackerTest, CandidateDiesWhenClusterVanishes) {
  CandidateTracker tracker(2, 2);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2}}, 0, 0, 1, &done);
  tracker.Advance(Clusters{{1, 2}}, 1, 1, 1, &done);
  tracker.Advance(Clusters{}, 2, 2, 1, &done);  // nothing at t=2
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].end_tick, 1);
  EXPECT_EQ(done[0].lifetime, 2);
  tracker.Flush(&done);
  EXPECT_EQ(done.size(), 1u);  // nothing else alive
}

TEST(CandidateTrackerTest, ShortLivedCandidateNotReported) {
  CandidateTracker tracker(2, 3);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2}}, 0, 0, 1, &done);
  tracker.Advance(Clusters{}, 1, 1, 1, &done);
  EXPECT_TRUE(done.empty());  // lifetime 1 < k = 3
}

TEST(CandidateTrackerTest, ClusterSplitSpawnsBothSuccessors) {
  // {1,2,3,4} splits into {1,2} and {3,4}; both lineages must survive and
  // carry the original start tick.
  CandidateTracker tracker(2, 2);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2, 3, 4}}, 0, 0, 1, &done);
  tracker.Advance(Clusters{{1, 2}, {3, 4}}, 1, 1, 1, &done);
  tracker.Flush(&done);
  ASSERT_EQ(done.size(), 2u);
  for (const Candidate& cand : done) {
    EXPECT_EQ(cand.start_tick, 0);
    EXPECT_EQ(cand.end_tick, 1);
    EXPECT_EQ(cand.lifetime, 2);
  }
}

TEST(CandidateTrackerTest, MergingClustersKeepBothLineages) {
  // Two separate pairs merge into one cluster; the merged cluster starts
  // its own candidate while both pair-lineages continue.
  CandidateTracker tracker(2, 2);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2}, {3, 4}}, 0, 0, 1, &done);
  tracker.Advance(Clusters{{1, 2, 3, 4}}, 1, 1, 1, &done);
  tracker.Flush(&done);
  // Lineages: {1,2}@[0,1], {3,4}@[0,1]; the merged {1,2,3,4} began at t=1
  // with lifetime 1 < k so it is not reported.
  ASSERT_EQ(done.size(), 2u);
}

TEST(CandidateTrackerTest, FreshClusterCandidateEvenWhenAssigned) {
  // A convoy born inside a cluster that also extends an older candidate
  // must not be lost (the always-add-cluster correction; see DESIGN.md).
  CandidateTracker tracker(2, 3);
  std::vector<Candidate> done;
  // Old candidate {1,2} exists from t=0.
  tracker.Advance(Clusters{{1, 2}}, 0, 0, 1, &done);
  // At t=1 the cluster is {1,2,3,4}: extends {1,2} AND starts {1,2,3,4}.
  tracker.Advance(Clusters{{1, 2, 3, 4}}, 1, 1, 1, &done);
  // From t=2 only {3,4} stay together for two more ticks.
  tracker.Advance(Clusters{{3, 4}}, 2, 2, 1, &done);
  tracker.Advance(Clusters{{3, 4}}, 3, 3, 1, &done);
  tracker.Flush(&done);
  // {3,4} lineage: born at t=1 inside {1,2,3,4} -> spans [1,3], lifetime 3.
  bool found = false;
  for (const Candidate& cand : done) {
    if (cand.objects == std::vector<ObjectId>{3, 4}) {
      found = true;
      EXPECT_EQ(cand.start_tick, 1);
      EXPECT_EQ(cand.end_tick, 3);
      EXPECT_EQ(cand.lifetime, 3);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CandidateTrackerTest, DedupKeepsEarliestStart) {
  CandidateTracker tracker(2, 2);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2, 3}}, 0, 0, 1, &done);
  // {1,2} appears both as intersection of {1,2,3} with cluster {1,2} and as
  // the fresh cluster {1,2}; one candidate must remain, starting at 0.
  tracker.Advance(Clusters{{1, 2}}, 1, 1, 1, &done);
  EXPECT_EQ(tracker.LiveCount(), 1u);
  tracker.Flush(&done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].start_tick, 0);
  EXPECT_EQ(done[0].lifetime, 2);
}

TEST(CandidateTrackerTest, EmitOnShrinkReportsMaximalConvoy) {
  // {1,2,3} travel together for 3 ticks, then only {1,2} continue. The
  // published pseudocode would narrow the candidate silently and report
  // only {1,2}; emit-on-shrink must surface {1,2,3}@[0,2] as well.
  CandidateTracker tracker(2, 3);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2, 3}}, 0, 0, 1, &done);
  tracker.Advance(Clusters{{1, 2, 3}}, 1, 1, 1, &done);
  tracker.Advance(Clusters{{1, 2, 3}}, 2, 2, 1, &done);
  EXPECT_TRUE(done.empty());
  tracker.Advance(Clusters{{1, 2}}, 3, 3, 1, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].objects, (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_EQ(done[0].start_tick, 0);
  EXPECT_EQ(done[0].end_tick, 2);
  // The surviving {1,2} lineage still spans everything.
  tracker.Flush(&done);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1].objects, (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(done[1].end_tick, 3);
  EXPECT_EQ(done[1].lifetime, 4);
}

TEST(CandidateTrackerTest, NoShrinkEmitWhenIntactSuccessorExists) {
  // The candidate also intersects a smaller cluster, but one cluster keeps
  // it whole: no emission (the intact lineage will carry it further).
  CandidateTracker tracker(2, 1);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2, 3}}, 0, 0, 1, &done);
  done.clear();
  tracker.Advance(Clusters{{1, 2, 3, 4}, {1, 2}}, 1, 1, 1, &done);
  // k = 1 would emit on shrink immediately; since an intact successor
  // exists, nothing is emitted at this step.
  EXPECT_TRUE(done.empty());
}

TEST(CandidateTrackerTest, StepWeightForPartitions) {
  // The CuTS filter advances by lambda per partition.
  CandidateTracker tracker(2, 6);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2}}, 0, 3, 4, &done);   // partition [0,3]
  tracker.Advance(Clusters{{1, 2}}, 4, 7, 4, &done);   // partition [4,7]
  tracker.Flush(&done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].lifetime, 8);
  EXPECT_EQ(done[0].start_tick, 0);
  EXPECT_EQ(done[0].end_tick, 7);
}

TEST(CandidateTrackerTest, MinObjectsEnforced) {
  CandidateTracker tracker(3, 1);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2}}, 0, 0, 1, &done);  // too small
  EXPECT_EQ(tracker.LiveCount(), 0u);
  tracker.Advance(Clusters{{1, 2, 3}}, 1, 1, 1, &done);
  EXPECT_EQ(tracker.LiveCount(), 1u);
}

TEST(CandidateTrackerTest, IntersectionBelowMKillsLineage) {
  CandidateTracker tracker(3, 2);
  std::vector<Candidate> done;
  tracker.Advance(Clusters{{1, 2, 3}}, 0, 0, 1, &done);
  // Only 2 common objects: the lineage dies (lifetime 1 < k), the new
  // cluster {2,3,9} starts fresh.
  tracker.Advance(Clusters{{2, 3, 9}}, 1, 1, 1, &done);
  EXPECT_TRUE(done.empty());
  tracker.Flush(&done);
  EXPECT_TRUE(done.empty());  // fresh cluster lifetime 1 < k
}

}  // namespace
}  // namespace convoy
