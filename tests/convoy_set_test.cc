#include "core/convoy_set.h"

#include <gtest/gtest.h>

namespace convoy {
namespace {

Convoy C(std::vector<ObjectId> objects, Tick start, Tick end) {
  return Convoy{std::move(objects), start, end};
}

TEST(ConvoyTest, Lifetime) {
  EXPECT_EQ(C({1, 2}, 5, 9).Lifetime(), 5);
  EXPECT_EQ(C({1, 2}, 3, 3).Lifetime(), 1);
}

TEST(ConvoyTest, ToStringFormat) {
  EXPECT_EQ(ToString(C({1, 2, 3}, 0, 9)), "{1,2,3}@[0,9]");
}

TEST(CoversTest, SupersetObjectsAndInterval) {
  EXPECT_TRUE(Covers(C({1, 2, 3}, 0, 10), C({1, 2}, 2, 8)));
  EXPECT_TRUE(Covers(C({1, 2}, 0, 10), C({1, 2}, 0, 10)));  // self
}

TEST(CoversTest, FailsOnIntervalOverhang) {
  EXPECT_FALSE(Covers(C({1, 2, 3}, 2, 10), C({1, 2}, 0, 8)));
  EXPECT_FALSE(Covers(C({1, 2, 3}, 0, 8), C({1, 2}, 2, 10)));
}

TEST(CoversTest, FailsOnObjectNotContained) {
  EXPECT_FALSE(Covers(C({1, 2, 3}, 0, 10), C({4}, 2, 8)));
  EXPECT_FALSE(Covers(C({1, 3}, 0, 10), C({1, 2}, 2, 8)));
}

TEST(CanonicalizeTest, SortsObjectsAndDedups) {
  std::vector<Convoy> convoys = {C({3, 1, 2}, 0, 5), C({1, 2, 3}, 0, 5)};
  Canonicalize(&convoys);
  ASSERT_EQ(convoys.size(), 1u);
  EXPECT_EQ(convoys[0].objects, (std::vector<ObjectId>{1, 2, 3}));
}

TEST(CanonicalizeTest, DedupsObjectIds) {
  std::vector<Convoy> convoys = {C({2, 1, 2, 1}, 0, 5)};
  Canonicalize(&convoys);
  EXPECT_EQ(convoys[0].objects, (std::vector<ObjectId>{1, 2}));
}

TEST(RemoveDominatedTest, DropsCoveredConvoy) {
  const auto result =
      RemoveDominated({C({1, 2}, 2, 8), C({1, 2, 3}, 0, 10)});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], C({1, 2, 3}, 0, 10));
}

TEST(RemoveDominatedTest, KeepsIncomparableConvoys) {
  // Overlapping but neither covers the other.
  const auto result = RemoveDominated({C({1, 2}, 0, 8), C({2, 3}, 2, 10)});
  EXPECT_EQ(result.size(), 2u);
}

TEST(RemoveDominatedTest, KeepsLongerIntervalSmallerSet) {
  // {1,2} over [0,20] vs {1,2,3} over [5,10]: incomparable, keep both.
  const auto result =
      RemoveDominated({C({1, 2}, 0, 20), C({1, 2, 3}, 5, 10)});
  EXPECT_EQ(result.size(), 2u);
}

TEST(RemoveDominatedTest, ChainOfDomination) {
  const auto result = RemoveDominated(
      {C({1}, 3, 4), C({1, 2}, 2, 6), C({1, 2, 3}, 0, 10)});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], C({1, 2, 3}, 0, 10));
}

TEST(RemoveDominatedTest, EmptyInput) {
  EXPECT_TRUE(RemoveDominated({}).empty());
}

TEST(SameResultSetTest, OrderInsensitive) {
  EXPECT_TRUE(SameResultSet({C({2, 1}, 0, 5), C({3}, 1, 2)},
                            {C({3}, 1, 2), C({1, 2}, 0, 5)}));
}

TEST(SameResultSetTest, DetectsDifferences) {
  EXPECT_FALSE(SameResultSet({C({1, 2}, 0, 5)}, {C({1, 2}, 0, 6)}));
  EXPECT_FALSE(SameResultSet({C({1, 2}, 0, 5)}, {}));
}

TEST(UncoveredTest, ReportsMissedConvoys) {
  const std::vector<Convoy> expected = {C({1, 2}, 0, 5), C({3, 4}, 2, 9)};
  const std::vector<Convoy> got = {C({1, 2, 9}, 0, 6)};
  const auto missing = Uncovered(expected, got);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], C({3, 4}, 2, 9));
}

TEST(UncoveredTest, EmptyExpectedMeansNothingMissing) {
  EXPECT_TRUE(Uncovered({}, {C({1, 2}, 0, 5)}).empty());
}

}  // namespace
}  // namespace convoy
