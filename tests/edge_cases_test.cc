// Degenerate and boundary inputs across the whole discovery stack: the
// cases a production deployment will eventually feed the library.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "convoy/convoy.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::FromXRows;

// ------------------------------------------------------------ queries -----

TEST(EdgeCaseTest, MEqualsOneReportsSingletons) {
  // m = 1: every alive object is its own cluster; convoys of one object
  // spanning their lifetimes qualify.
  const auto db = FromXRows({{0, 1, 2}}, 0.0);
  const auto result = Cmc(db, ConvoyQuery{1, 3, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects, (std::vector<ObjectId>{0}));
  EXPECT_EQ(result[0].Lifetime(), 3);
}

TEST(EdgeCaseTest, KEqualsOneMeansSingleTickMeetings) {
  // Two objects meet only at tick 1.
  const auto db = FromXRows({{0, 5, 10}, {50, 5.4, 60}});
  const auto result = Cmc(db, ConvoyQuery{2, 1, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, 1);
  EXPECT_EQ(result[0].end_tick, 1);
}

TEST(EdgeCaseTest, ZeroRangeRequiresExactCoincidence) {
  const auto coincident = FromXRows({{1, 2, 3}, {1, 2, 3}}, 0.0);
  EXPECT_EQ(Cmc(coincident, ConvoyQuery{2, 3, 0.0}).size(), 1u);
  const auto apart = FromXRows({{1, 2, 3}, {1, 2, 3}}, 0.001);
  EXPECT_TRUE(Cmc(apart, ConvoyQuery{2, 3, 0.0}).empty());
}

TEST(EdgeCaseTest, HugeRangeGroupsEverything) {
  const auto db = FromXRows({{0, 1, 2}, {500, 501, 502}, {900, 901, 902}});
  const auto result = Cmc(db, ConvoyQuery{3, 3, 1e9});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects.size(), 3u);
}

TEST(EdgeCaseTest, MLargerThanPopulation) {
  const auto db = FromXRows({{0, 1}, {0, 1}}, 0.1);
  EXPECT_TRUE(Cmc(db, ConvoyQuery{5, 2, 10.0}).empty());
  EXPECT_TRUE(Cuts(db, ConvoyQuery{5, 2, 10.0}).empty());
}

TEST(EdgeCaseTest, KLargerThanDomain) {
  const auto db = FromXRows({{0, 1, 2}, {0, 1, 2}}, 0.1);
  EXPECT_TRUE(Cmc(db, ConvoyQuery{2, 100, 1.0}).empty());
  EXPECT_TRUE(Cuts(db, ConvoyQuery{2, 100, 1.0}).empty());
}

// ------------------------------------------------------------ databases ---

TEST(EdgeCaseTest, SingleTickDatabase) {
  const auto db = FromXRows({{0}, {0.3}, {0.6}});
  const auto result = Cmc(db, ConvoyQuery{3, 1, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(Cuts(db, ConvoyQuery{3, 1, 1.0}).size() == 1u);
}

TEST(EdgeCaseTest, DatabaseWithEmptyTrajectories) {
  TrajectoryDatabase db;
  db.Add(Trajectory(0));
  Trajectory a(1);
  Trajectory b(2);
  for (Tick t = 0; t < 4; ++t) {
    a.Append(static_cast<double>(t), 0.0, t);
    b.Append(static_cast<double>(t), 0.4, t);
  }
  db.Add(std::move(a));
  db.Add(std::move(b));
  db.Add(Trajectory(3));
  const ConvoyQuery query{2, 4, 1.0};
  EXPECT_EQ(Cmc(db, query).size(), 1u);
  EXPECT_EQ(Cuts(db, query).size(), 1u);
}

TEST(EdgeCaseTest, SingleSampleTrajectoriesAreHandled) {
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 3; ++id) {
    Trajectory traj(id);
    traj.Append(0.2 * static_cast<double>(id), 0.0, 5);
    db.Add(std::move(traj));
  }
  const auto result = Cmc(db, ConvoyQuery{3, 1, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, 5);
  EXPECT_TRUE(SameResultSet(result, Cuts(db, ConvoyQuery{3, 1, 1.0},
                                         CutsVariant::kCutsStar)));
}

TEST(EdgeCaseTest, NegativeTicksWork) {
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 2; ++id) {
    Trajectory traj(id);
    for (Tick t = -10; t <= -5; ++t) {
      traj.Append(static_cast<double>(t), 0.3 * static_cast<double>(id), t);
    }
    db.Add(std::move(traj));
  }
  const ConvoyQuery query{2, 6, 1.0};
  const auto result = Cmc(db, query);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, -10);
  EXPECT_EQ(result[0].end_tick, -5);
  EXPECT_TRUE(SameResultSet(result, Cuts(db, query)));
}

TEST(EdgeCaseTest, IdenticalTrajectories) {
  // Five clones of the same path: one convoy of all five.
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 5; ++id) {
    Trajectory traj(id);
    for (Tick t = 0; t < 6; ++t) {
      traj.Append(static_cast<double>(t) * 2.0, 1.0, t);
    }
    db.Add(std::move(traj));
  }
  const ConvoyQuery query{5, 6, 0.5};
  const auto result = Cmc(db, query);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects.size(), 5u);
  EXPECT_TRUE(SameResultSet(result, Cuts(db, query)));
}

TEST(EdgeCaseTest, StationaryObjects) {
  // Parked vehicles form a convoy too (nothing in Definition 3 requires
  // motion) — and stationary data is a degenerate input for DP (all
  // interior points collapse).
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 3; ++id) {
    Trajectory traj(id);
    for (Tick t = 0; t < 10; ++t) {
      traj.Append(0.2 * static_cast<double>(id), 7.0, t);
    }
    db.Add(std::move(traj));
  }
  const ConvoyQuery query{3, 10, 1.0};
  const auto cmc = Cmc(db, query);
  ASSERT_EQ(cmc.size(), 1u);
  for (const auto variant :
       {CutsVariant::kCuts, CutsVariant::kCutsPlus, CutsVariant::kCutsStar}) {
    EXPECT_TRUE(SameResultSet(cmc, Cuts(db, query, variant)));
  }
}

TEST(EdgeCaseTest, DisjointLifetimesNeverMeet) {
  // Same positions, non-overlapping lifetimes: no convoy.
  TrajectoryDatabase db;
  Trajectory a(0);
  for (Tick t = 0; t < 5; ++t) a.Append(static_cast<double>(t), 0, t);
  Trajectory b(1);
  for (Tick t = 10; t < 15; ++t) {
    b.Append(static_cast<double>(t - 10), 0, t);
  }
  db.Add(std::move(a));
  db.Add(std::move(b));
  const ConvoyQuery query{2, 2, 5.0};
  EXPECT_TRUE(Cmc(db, query).empty());
  EXPECT_TRUE(Cuts(db, query).empty());
}

// ----------------------------------------------------------- streaming ----

TEST(EdgeCaseTest, StreamingSingleTick) {
  StreamingCmc stream(ConvoyQuery{2, 1, 1.0});
  ASSERT_TRUE(stream.BeginTick(0).ok());
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
  ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
  const auto closed = stream.EndTick().value();
  const auto finished = stream.Finish().value();
  EXPECT_EQ(closed.size() + finished.size(), 1u);
}

// ----------------------------------------------------------- bad input ----

// Malformed-CSV fuzz table: every row is hostile in a different way. The
// loader must never crash, never produce a non-finite coordinate, and must
// account for every line as parsed, skipped, or collapsed — in release
// builds, where no assert is watching.
TEST(EdgeCaseTest, MalformedCsvFuzzTable) {
  struct Case {
    const char* name;
    const char* line;
    bool accepted;  // does the row survive into the database?
  };
  const Case kCases[] = {
      {"plain garbage", "complete garbage", false},
      {"too few fields", "1,2,3", false},
      {"too many fields", "1,2,3,4,5", false},
      {"empty fields", ",,,", false},
      {"nan x", "1,0,nan,2", false},
      {"nan y", "1,0,2,NaN", false},
      {"inf x", "1,0,inf,2", false},
      {"negative inf y", "1,0,2,-inf", false},
      {"infinity spelled out", "1,0,infinity,2", false},
      {"overflow double", "1,0,1e999,2", false},
      {"overflow tick", "1,99999999999999999999,1,2", false},
      {"negative id", "-7,0,1,2", false},
      {"float id", "1.5,0,1,2", false},
      {"float tick", "1,0.5,1,2", false},
      {"hex number", "1,0,0x10,2", false},
      {"trailing junk on number", "1,0,3.5abc,2", false},
      {"embedded null-ish", "1,0,,2", false},
      {"semicolon separators", "1;0;1;2", false},
      {"huge but finite", "1,0,1e300,-1e300", true},
      {"scientific notation", "1,0,1.5e-3,2.5E+2", true},
      {"whitespace everywhere", " 1 ,\t0 , 1.0 ,\t2.0 ", true},
      {"negative tick", "1,-5,1,2", true},
  };
  for (const Case& c : kCases) {
    // A valid first row pins the header heuristic so every fuzz line is
    // judged as data, not as a tolerated header.
    std::istringstream in(std::string("0,0,0,0\n") + c.line + "\n");
    const CsvLoadResult result = LoadTrajectoriesCsv(in);
    ASSERT_TRUE(result.ok) << c.name;
    EXPECT_EQ(result.lines_parsed, c.accepted ? 2u : 1u) << c.name;
    EXPECT_EQ(result.lines_skipped, c.accepted ? 0u : 1u) << c.name;
    if (!c.accepted) {
      ASSERT_EQ(result.diagnostics.size(), 1u) << c.name;
      EXPECT_EQ(result.diagnostics[0].line_number, 2u) << c.name;
    }
    for (const Trajectory& traj : result.db.trajectories()) {
      for (const TimedPoint& p : traj.samples()) {
        EXPECT_TRUE(std::isfinite(p.pos.x) && std::isfinite(p.pos.y))
            << c.name;
      }
    }
  }
}

// A file that is nothing but garbage must load as ok (the *file* was
// readable) with an empty database and full accounting — and running a
// discovery over that empty database must return no convoys, not crash.
TEST(EdgeCaseTest, AllGarbageCsvYieldsEmptyDatabase) {
  std::istringstream in("header,line,is,fine\njunk\n1,2\nnan,nan,nan,nan\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.lines_parsed, 0u);
  EXPECT_EQ(result.lines_skipped, 3u);  // header tolerated, rest rejected
  EXPECT_TRUE(result.db.Empty());
  EXPECT_TRUE(Cmc(result.db, ConvoyQuery{2, 2, 1.0}).empty());
  EXPECT_TRUE(Cuts(result.db, ConvoyQuery{2, 2, 1.0}).empty());
}

// ------------------------------------------------------------ simplify ----

TEST(EdgeCaseTest, SimplifyStationaryTrajectory) {
  Trajectory traj(0);
  for (Tick t = 0; t < 100; ++t) traj.Append(3.0, 4.0, t);
  for (const auto kind : {SimplifierKind::kDp, SimplifierKind::kDpPlus,
                          SimplifierKind::kDpStar}) {
    const SimplifiedTrajectory simp = Simplify(traj, 0.5, kind);
    EXPECT_EQ(simp.NumVertices(), 2u) << ToString(kind);
    EXPECT_DOUBLE_EQ(simp.MaxTolerance(), 0.0);
  }
}

TEST(EdgeCaseTest, SimplifyZigZagWithZeroDelta) {
  // delta = 0 must keep every non-collinear point and stay within bounds.
  Trajectory traj(0);
  for (Tick t = 0; t < 50; ++t) {
    traj.Append(static_cast<double>(t), t % 2 == 0 ? 0.0 : 1.0, t);
  }
  EXPECT_EQ(DouglasPeucker(traj, 0.0).NumVertices(), 50u);
  EXPECT_EQ(DpStar(traj, 0.0).NumVertices(), 50u);
}

// --------------------------------------------------------------- verify ---

TEST(EdgeCaseTest, VerifyEmptyConvoyRejected) {
  const auto db = FromXRows({{0, 1}, {0, 1}}, 0.1);
  EXPECT_FALSE(VerifyConvoy(db, ConvoyQuery{2, 1, 1.0}, Convoy{{}, 0, 1}));
}

TEST(EdgeCaseTest, VerifyUnknownObjectRejected) {
  const auto db = FromXRows({{0, 1}, {0, 1}}, 0.1);
  EXPECT_FALSE(
      VerifyConvoy(db, ConvoyQuery{2, 1, 1.0}, Convoy{{0, 99}, 0, 1}));
}

}  // namespace
}  // namespace convoy
