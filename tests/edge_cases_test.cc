// Degenerate and boundary inputs across the whole discovery stack: the
// cases a production deployment will eventually feed the library.

#include <gtest/gtest.h>

#include "convoy/convoy.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::FromXRows;

// ------------------------------------------------------------ queries -----

TEST(EdgeCaseTest, MEqualsOneReportsSingletons) {
  // m = 1: every alive object is its own cluster; convoys of one object
  // spanning their lifetimes qualify.
  const auto db = FromXRows({{0, 1, 2}}, 0.0);
  const auto result = Cmc(db, ConvoyQuery{1, 3, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects, (std::vector<ObjectId>{0}));
  EXPECT_EQ(result[0].Lifetime(), 3);
}

TEST(EdgeCaseTest, KEqualsOneMeansSingleTickMeetings) {
  // Two objects meet only at tick 1.
  const auto db = FromXRows({{0, 5, 10}, {50, 5.4, 60}});
  const auto result = Cmc(db, ConvoyQuery{2, 1, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, 1);
  EXPECT_EQ(result[0].end_tick, 1);
}

TEST(EdgeCaseTest, ZeroRangeRequiresExactCoincidence) {
  const auto coincident = FromXRows({{1, 2, 3}, {1, 2, 3}}, 0.0);
  EXPECT_EQ(Cmc(coincident, ConvoyQuery{2, 3, 0.0}).size(), 1u);
  const auto apart = FromXRows({{1, 2, 3}, {1, 2, 3}}, 0.001);
  EXPECT_TRUE(Cmc(apart, ConvoyQuery{2, 3, 0.0}).empty());
}

TEST(EdgeCaseTest, HugeRangeGroupsEverything) {
  const auto db = FromXRows({{0, 1, 2}, {500, 501, 502}, {900, 901, 902}});
  const auto result = Cmc(db, ConvoyQuery{3, 3, 1e9});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects.size(), 3u);
}

TEST(EdgeCaseTest, MLargerThanPopulation) {
  const auto db = FromXRows({{0, 1}, {0, 1}}, 0.1);
  EXPECT_TRUE(Cmc(db, ConvoyQuery{5, 2, 10.0}).empty());
  EXPECT_TRUE(Cuts(db, ConvoyQuery{5, 2, 10.0}).empty());
}

TEST(EdgeCaseTest, KLargerThanDomain) {
  const auto db = FromXRows({{0, 1, 2}, {0, 1, 2}}, 0.1);
  EXPECT_TRUE(Cmc(db, ConvoyQuery{2, 100, 1.0}).empty());
  EXPECT_TRUE(Cuts(db, ConvoyQuery{2, 100, 1.0}).empty());
}

// ------------------------------------------------------------ databases ---

TEST(EdgeCaseTest, SingleTickDatabase) {
  const auto db = FromXRows({{0}, {0.3}, {0.6}});
  const auto result = Cmc(db, ConvoyQuery{3, 1, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(Cuts(db, ConvoyQuery{3, 1, 1.0}).size() == 1u);
}

TEST(EdgeCaseTest, DatabaseWithEmptyTrajectories) {
  TrajectoryDatabase db;
  db.Add(Trajectory(0));
  Trajectory a(1);
  Trajectory b(2);
  for (Tick t = 0; t < 4; ++t) {
    a.Append(static_cast<double>(t), 0.0, t);
    b.Append(static_cast<double>(t), 0.4, t);
  }
  db.Add(std::move(a));
  db.Add(std::move(b));
  db.Add(Trajectory(3));
  const ConvoyQuery query{2, 4, 1.0};
  EXPECT_EQ(Cmc(db, query).size(), 1u);
  EXPECT_EQ(Cuts(db, query).size(), 1u);
}

TEST(EdgeCaseTest, SingleSampleTrajectoriesAreHandled) {
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 3; ++id) {
    Trajectory traj(id);
    traj.Append(0.2 * static_cast<double>(id), 0.0, 5);
    db.Add(std::move(traj));
  }
  const auto result = Cmc(db, ConvoyQuery{3, 1, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, 5);
  EXPECT_TRUE(SameResultSet(result, Cuts(db, ConvoyQuery{3, 1, 1.0},
                                         CutsVariant::kCutsStar)));
}

TEST(EdgeCaseTest, NegativeTicksWork) {
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 2; ++id) {
    Trajectory traj(id);
    for (Tick t = -10; t <= -5; ++t) {
      traj.Append(static_cast<double>(t), 0.3 * static_cast<double>(id), t);
    }
    db.Add(std::move(traj));
  }
  const ConvoyQuery query{2, 6, 1.0};
  const auto result = Cmc(db, query);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, -10);
  EXPECT_EQ(result[0].end_tick, -5);
  EXPECT_TRUE(SameResultSet(result, Cuts(db, query)));
}

TEST(EdgeCaseTest, IdenticalTrajectories) {
  // Five clones of the same path: one convoy of all five.
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 5; ++id) {
    Trajectory traj(id);
    for (Tick t = 0; t < 6; ++t) {
      traj.Append(static_cast<double>(t) * 2.0, 1.0, t);
    }
    db.Add(std::move(traj));
  }
  const ConvoyQuery query{5, 6, 0.5};
  const auto result = Cmc(db, query);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects.size(), 5u);
  EXPECT_TRUE(SameResultSet(result, Cuts(db, query)));
}

TEST(EdgeCaseTest, StationaryObjects) {
  // Parked vehicles form a convoy too (nothing in Definition 3 requires
  // motion) — and stationary data is a degenerate input for DP (all
  // interior points collapse).
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 3; ++id) {
    Trajectory traj(id);
    for (Tick t = 0; t < 10; ++t) {
      traj.Append(0.2 * static_cast<double>(id), 7.0, t);
    }
    db.Add(std::move(traj));
  }
  const ConvoyQuery query{3, 10, 1.0};
  const auto cmc = Cmc(db, query);
  ASSERT_EQ(cmc.size(), 1u);
  for (const auto variant :
       {CutsVariant::kCuts, CutsVariant::kCutsPlus, CutsVariant::kCutsStar}) {
    EXPECT_TRUE(SameResultSet(cmc, Cuts(db, query, variant)));
  }
}

TEST(EdgeCaseTest, DisjointLifetimesNeverMeet) {
  // Same positions, non-overlapping lifetimes: no convoy.
  TrajectoryDatabase db;
  Trajectory a(0);
  for (Tick t = 0; t < 5; ++t) a.Append(static_cast<double>(t), 0, t);
  Trajectory b(1);
  for (Tick t = 10; t < 15; ++t) {
    b.Append(static_cast<double>(t - 10), 0, t);
  }
  db.Add(std::move(a));
  db.Add(std::move(b));
  const ConvoyQuery query{2, 2, 5.0};
  EXPECT_TRUE(Cmc(db, query).empty());
  EXPECT_TRUE(Cuts(db, query).empty());
}

// ----------------------------------------------------------- streaming ----

TEST(EdgeCaseTest, StreamingSingleTick) {
  StreamingCmc stream(ConvoyQuery{2, 1, 1.0});
  stream.BeginTick(0);
  stream.Report(0, Point(0, 0));
  stream.Report(1, Point(0, 0.5));
  const auto closed = stream.EndTick();
  const auto finished = stream.Finish();
  EXPECT_EQ(closed.size() + finished.size(), 1u);
}

// ------------------------------------------------------------ simplify ----

TEST(EdgeCaseTest, SimplifyStationaryTrajectory) {
  Trajectory traj(0);
  for (Tick t = 0; t < 100; ++t) traj.Append(3.0, 4.0, t);
  for (const auto kind : {SimplifierKind::kDp, SimplifierKind::kDpPlus,
                          SimplifierKind::kDpStar}) {
    const SimplifiedTrajectory simp = Simplify(traj, 0.5, kind);
    EXPECT_EQ(simp.NumVertices(), 2u) << ToString(kind);
    EXPECT_DOUBLE_EQ(simp.MaxTolerance(), 0.0);
  }
}

TEST(EdgeCaseTest, SimplifyZigZagWithZeroDelta) {
  // delta = 0 must keep every non-collinear point and stay within bounds.
  Trajectory traj(0);
  for (Tick t = 0; t < 50; ++t) {
    traj.Append(static_cast<double>(t), t % 2 == 0 ? 0.0 : 1.0, t);
  }
  EXPECT_EQ(DouglasPeucker(traj, 0.0).NumVertices(), 50u);
  EXPECT_EQ(DpStar(traj, 0.0).NumVertices(), 50u);
}

// --------------------------------------------------------------- verify ---

TEST(EdgeCaseTest, VerifyEmptyConvoyRejected) {
  const auto db = FromXRows({{0, 1}, {0, 1}}, 0.1);
  EXPECT_FALSE(VerifyConvoy(db, ConvoyQuery{2, 1, 1.0}, Convoy{{}, 0, 1}));
}

TEST(EdgeCaseTest, VerifyUnknownObjectRejected) {
  const auto db = FromXRows({{0, 1}, {0, 1}}, 0.1);
  EXPECT_FALSE(
      VerifyConvoy(db, ConvoyQuery{2, 1, 1.0}, Convoy{{0, 99}, 0, 1}));
}

}  // namespace
}  // namespace convoy
