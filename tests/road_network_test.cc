#include "datagen/road_network.h"

#include <gtest/gtest.h>

#include "cluster/dbscan.h"

namespace convoy {
namespace {

RoadConfig SmallGrid() {
  RoadConfig config;
  config.world_size = 2000.0;
  config.spacing = 200.0;
  config.speed_mean = 10.0;
  config.gps_noise = 0.5;
  return config;
}

TEST(RoadNetworkTest, SnapToRoadLandsOnRoad) {
  const RoadConfig config = SmallGrid();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Point p(rng.Uniform(0, 2000), rng.Uniform(0, 2000));
    EXPECT_TRUE(IsOnRoad(config, SnapToRoad(config, p), 1e-9));
  }
}

TEST(RoadNetworkTest, SnapIsIdempotent) {
  const RoadConfig config = SmallGrid();
  const Point p(333.0, 777.0);
  const Point snapped = SnapToRoad(config, p);
  EXPECT_EQ(snapped, SnapToRoad(config, snapped));
}

TEST(RoadNetworkTest, RandomIntersectionOnGrid) {
  const RoadConfig config = SmallGrid();
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const Point p = RandomIntersection(rng, config);
    EXPECT_DOUBLE_EQ(std::fmod(p.x, config.spacing), 0.0);
    EXPECT_DOUBLE_EQ(std::fmod(p.y, config.spacing), 0.0);
    EXPECT_LE(p.x, config.world_size);
    EXPECT_LE(p.y, config.world_size);
  }
}

TEST(RoadNetworkTest, PathStaysOnRoads) {
  RoadConfig config = SmallGrid();
  Rng rng(3);
  const DensePath path = RoadPathFrom(rng, config, Point(500, 700), 500);
  ASSERT_EQ(path.size(), 500u);
  size_t off_road = 0;
  for (const Point& p : path) {
    // Allow 4 sigma of GPS noise.
    if (!IsOnRoad(config, p, 4.0 * config.gps_noise)) ++off_road;
  }
  EXPECT_LT(off_road, 5u);  // ~0.006% expected beyond 4 sigma
}

TEST(RoadNetworkTest, PathRespectsSpeed) {
  RoadConfig config = SmallGrid();
  config.gps_noise = 0.0;
  Rng rng(4);
  const DensePath path = RoadPathFrom(rng, config, Point(0, 0), 300);
  for (size_t i = 1; i < path.size(); ++i) {
    // Manhattan step length is bounded by the speed draw (6 sigma).
    const double step = std::abs(path[i].x - path[i - 1].x) +
                        std::abs(path[i].y - path[i - 1].y);
    EXPECT_LE(step, config.speed_mean * (1.0 + 6.0 * config.speed_jitter));
  }
}

TEST(RoadNetworkTest, DeterministicPerSeed) {
  const RoadConfig config = SmallGrid();
  Rng a(7);
  Rng b(7);
  const DensePath pa = RoadPathFrom(a, config, Point(100, 100), 100);
  const DensePath pb = RoadPathFrom(b, config, Point(100, 100), 100);
  EXPECT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(RoadNetworkTest, TrafficConcentratesOnCorridors) {
  // Road-constrained movement produces far more close encounters than free
  // waypoint wandering in the same world — the reason road data yields
  // chance convoys. Compare the number of clustered snapshot points.
  RoadConfig roads = SmallGrid();
  MovementConfig free_move;
  free_move.world_size = roads.world_size;
  free_move.speed_mean = roads.speed_mean;

  Rng rng(11);
  std::vector<Point> road_positions;
  std::vector<Point> free_positions;
  for (int obj = 0; obj < 60; ++obj) {
    const Point start(rng.Uniform(0, 2000), rng.Uniform(0, 2000));
    road_positions.push_back(RoadPathFrom(rng, roads, start, 50).back());
    free_positions.push_back(
        WaypointPathFrom(rng, free_move, start, 50).back());
  }
  const size_t road_clustered =
      Dbscan(road_positions, 30.0, 2).NumClusteredPoints();
  const size_t free_clustered =
      Dbscan(free_positions, 30.0, 2).NumClusteredPoints();
  EXPECT_GT(road_clustered, free_clustered);
}

TEST(RoadNetworkTest, ZeroTicks) {
  RoadConfig config = SmallGrid();
  Rng rng(5);
  EXPECT_TRUE(RoadPathFrom(rng, config, Point(0, 0), 0).empty());
}

}  // namespace
}  // namespace convoy
