#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "geom/distance.h"
#include "simplify/douglas_peucker.h"
#include "simplify/dp_plus.h"
#include "simplify/dp_star.h"
#include "simplify/simplifier.h"
#include "traj/database.h"
#include "util/random.h"

namespace convoy {
namespace {

Trajectory ZigZag(ObjectId id, size_t n, double amplitude) {
  Trajectory traj(id);
  for (size_t i = 0; i < n; ++i) {
    const double y = (i % 2 == 0) ? 0.0 : amplitude;
    traj.Append(static_cast<double>(i), y, static_cast<Tick>(i));
  }
  return traj;
}

Trajectory RandomWalk(Rng& rng, ObjectId id, size_t n) {
  Trajectory traj(id);
  Point pos(rng.Uniform(0, 10), rng.Uniform(0, 10));
  for (size_t i = 0; i < n; ++i) {
    pos = pos + Point(rng.Gaussian(0.4, 1.0), rng.Gaussian(0.0, 1.0));
    traj.Append(pos.x, pos.y, static_cast<Tick>(i));
  }
  return traj;
}

// ----------------------------------------------------------- basic cases --

TEST(DouglasPeuckerTest, StraightLineCollapsesToEndpoints) {
  Trajectory traj(0);
  for (Tick t = 0; t < 20; ++t) {
    traj.Append(static_cast<double>(t), 2.0 * static_cast<double>(t), t);
  }
  const SimplifiedTrajectory simp = DouglasPeucker(traj, 0.1);
  EXPECT_EQ(simp.NumVertices(), 2u);
  EXPECT_EQ(simp.NumSegments(), 1u);
  EXPECT_DOUBLE_EQ(simp.MaxTolerance(), 0.0);
}

TEST(DouglasPeuckerTest, ZeroToleranceKeepsNonCollinearPoints) {
  const Trajectory traj = ZigZag(0, 9, 5.0);
  const SimplifiedTrajectory simp = DouglasPeucker(traj, 0.0);
  EXPECT_EQ(simp.NumVertices(), 9u);
}

TEST(DouglasPeuckerTest, LargeToleranceKeepsOnlyEndpoints) {
  const Trajectory traj = ZigZag(0, 9, 5.0);
  const SimplifiedTrajectory simp = DouglasPeucker(traj, 100.0);
  EXPECT_EQ(simp.NumVertices(), 2u);
  EXPECT_EQ(simp.vertices().front().t, 0);
  EXPECT_EQ(simp.vertices().back().t, 8);
  // Actual tolerance records the real max deviation, not the given delta.
  EXPECT_NEAR(simp.MaxTolerance(), 5.0, 1e-9);
}

TEST(DouglasPeuckerTest, TinyInputsPassThrough) {
  Trajectory one(0);
  one.Append(1, 1, 0);
  EXPECT_EQ(DouglasPeucker(one, 1.0).NumVertices(), 1u);
  EXPECT_EQ(DouglasPeucker(one, 1.0).NumSegments(), 0u);

  Trajectory two(0);
  two.Append(1, 1, 0);
  two.Append(2, 2, 1);
  const SimplifiedTrajectory simp = DouglasPeucker(two, 1.0);
  EXPECT_EQ(simp.NumVertices(), 2u);
  EXPECT_DOUBLE_EQ(simp.SegmentTolerance(0), 0.0);
}

TEST(DouglasPeuckerTest, EmptyTrajectory) {
  const SimplifiedTrajectory simp = DouglasPeucker(Trajectory(0), 1.0);
  EXPECT_TRUE(simp.Empty());
  EXPECT_EQ(simp.NumSegments(), 0u);
}

// Paper Figure 3: a point with small perpendicular deviation but large
// time-synchronized deviation is dropped by DP yet kept by DP*.
TEST(DpVsDpStarTest, PaperFigure3TemporalDifference) {
  // p1=(0,0,t=1), p3=(10,0,t=3); p2 lies spatially near the line p1p3 but
  // at time 2 it "should" be at x=5 while it actually is at x=9.
  Trajectory traj(0);
  traj.Append(0, 0, 1);
  traj.Append(9, 0.5, 2);
  traj.Append(10, 0, 3);

  const double delta = 1.0;
  const SimplifiedTrajectory dp = DouglasPeucker(traj, delta);
  EXPECT_EQ(dp.NumVertices(), 2u);  // perpendicular deviation ~0.5 <= 1

  const SimplifiedTrajectory dpstar = DpStar(traj, delta);
  EXPECT_EQ(dpstar.NumVertices(), 3u);  // time-sync deviation ~4 > 1
}

// Paper Figure 10: DP splits at the farthest point (p6); DP+ splits at the
// exceeding point nearest the middle (p4).
TEST(DpPlusTest, SplitsAtMiddleMostExceedingPoint) {
  Trajectory traj(0);
  traj.Append(0, 0, 0);    // p1
  traj.Append(1, 0.1, 1);  // p2 within delta
  traj.Append(2, 0.1, 2);  // p3 within delta
  traj.Append(3, 2.0, 3);  // p4 exceeds delta, middle-most
  traj.Append(4, 0.1, 4);  // p5 within delta
  traj.Append(5, 3.0, 5);  // p6 exceeds delta, farthest
  traj.Append(6, 0, 6);    // p7

  const double delta = 1.0;
  const SimplifiedTrajectory dp = DouglasPeucker(traj, delta);
  const SimplifiedTrajectory dpp = DpPlus(traj, delta);

  // DP keeps p6 as its first split; DP+ keeps p4.
  const auto has_tick = [](const SimplifiedTrajectory& s, Tick t) {
    return std::any_of(s.vertices().begin(), s.vertices().end(),
                       [t](const TimedPoint& v) { return v.t == t; });
  };
  EXPECT_TRUE(has_tick(dp, 5));
  EXPECT_TRUE(has_tick(dpp, 3));
}

TEST(CollectSplitDeviationsTest, SortedAndCompleteForSmallInput) {
  const Trajectory traj = ZigZag(0, 5, 2.0);
  const std::vector<double> devs = CollectSplitDeviations(traj);
  EXPECT_TRUE(std::is_sorted(devs.begin(), devs.end()));
  EXPECT_FALSE(devs.empty());
  // All recorded deviations are achievable perpendicular distances >= 0.
  for (const double d : devs) EXPECT_GE(d, 0.0);
}

TEST(CollectSplitDeviationsTest, TrivialInputsYieldNothing) {
  Trajectory two(0);
  two.Append(0, 0, 0);
  two.Append(1, 1, 1);
  EXPECT_TRUE(CollectSplitDeviations(two).empty());
}

// ------------------------------------------------------ dispatch helpers --

TEST(SimplifierTest, ToStringNames) {
  EXPECT_EQ(ToString(SimplifierKind::kDp), "DP");
  EXPECT_EQ(ToString(SimplifierKind::kDpPlus), "DP+");
  EXPECT_EQ(ToString(SimplifierKind::kDpStar), "DP*");
}

TEST(SimplifierTest, DispatchMatchesDirectCalls) {
  Rng rng(5);
  const Trajectory traj = RandomWalk(rng, 0, 100);
  const double delta = 1.5;
  EXPECT_EQ(Simplify(traj, delta, SimplifierKind::kDp).NumVertices(),
            DouglasPeucker(traj, delta).NumVertices());
  EXPECT_EQ(Simplify(traj, delta, SimplifierKind::kDpPlus).NumVertices(),
            DpPlus(traj, delta).NumVertices());
  EXPECT_EQ(Simplify(traj, delta, SimplifierKind::kDpStar).NumVertices(),
            DpStar(traj, delta).NumVertices());
}

TEST(SimplifierTest, VertexReductionPercent) {
  TrajectoryDatabase db;
  Trajectory traj(0);
  for (Tick t = 0; t < 10; ++t) {
    traj.Append(static_cast<double>(t), 0.0, t);
  }
  db.Add(std::move(traj));
  const auto simp = SimplifyDatabase(db, 0.5, SimplifierKind::kDp);
  // Straight line: 10 points -> 2 points = 80% reduction.
  EXPECT_DOUBLE_EQ(VertexReductionPercent(db, simp), 80.0);
}

// ------------------------------------------------- property-based sweeps --

class SimplifyInvariantTest
    : public ::testing::TestWithParam<std::tuple<SimplifierKind, double, int>> {
};

// The fundamental simplification contract (Definition 4): every original
// sample deviates from its covering simplified segment by at most the
// segment's recorded actual tolerance, which never exceeds delta; endpoints
// are preserved; vertices are a subsequence of the samples.
TEST_P(SimplifyInvariantTest, ToleranceContractHolds) {
  const auto [kind, delta, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const Trajectory traj = RandomWalk(rng, 0, 300);
  const SimplifiedTrajectory simp = Simplify(traj, delta, kind);

  ASSERT_GE(simp.NumVertices(), 2u);
  EXPECT_EQ(simp.vertices().front(), traj.samples().front());
  EXPECT_EQ(simp.vertices().back(), traj.samples().back());
  EXPECT_LE(simp.MaxTolerance(), delta + 1e-9);

  // Vertices must be actual samples, in order.
  size_t cursor = 0;
  for (const TimedPoint& v : simp.vertices()) {
    while (cursor < traj.Size() && !(traj[cursor] == v)) ++cursor;
    ASSERT_LT(cursor, traj.Size()) << "vertex is not an original sample";
  }

  for (const TimedPoint& sample : traj.samples()) {
    const auto seg_idx = simp.SegmentCovering(sample.t);
    ASSERT_TRUE(seg_idx.has_value());
    const TimedSegment seg = simp.GetSegment(*seg_idx);
    const double tolerance = simp.SegmentTolerance(*seg_idx);
    double deviation;
    if (kind == SimplifierKind::kDpStar) {
      deviation = D(sample.pos, seg.PositionAt(static_cast<double>(sample.t)));
    } else {
      deviation = DPL(sample.pos, seg.Spatial());
    }
    // Samples at segment boundaries may belong to the neighbor segment with
    // its own tolerance; accept either bound.
    double limit = tolerance;
    if (seg.BeginTick() == sample.t && *seg_idx > 0) {
      limit = std::max(limit, simp.SegmentTolerance(*seg_idx - 1));
    }
    if (seg.EndTick() == sample.t && *seg_idx + 1 < simp.NumSegments()) {
      limit = std::max(limit, simp.SegmentTolerance(*seg_idx + 1));
    }
    EXPECT_LE(deviation, limit + 1e-9)
        << ToString(kind) << " delta=" << delta << " tick=" << sample.t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsDeltasSeeds, SimplifyInvariantTest,
    ::testing::Combine(::testing::Values(SimplifierKind::kDp,
                                         SimplifierKind::kDpPlus,
                                         SimplifierKind::kDpStar),
                       ::testing::Values(0.5, 2.0, 8.0),
                       ::testing::Values(1, 2, 3, 4)));

class ReductionOrderTest : public ::testing::TestWithParam<int> {};

// Shape properties the paper reports in Figure 15(a): DP reduces at least
// as much as DP* (perpendicular deviation <= time-sync deviation), and
// larger tolerances never reduce less.
TEST_P(ReductionOrderTest, DpReducesAtLeastAsMuchAsDpStar) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const Trajectory traj = RandomWalk(rng, 0, 400);
  for (const double delta : {0.5, 1.0, 4.0}) {
    EXPECT_LE(DouglasPeucker(traj, delta).NumVertices(),
              DpStar(traj, delta).NumVertices());
  }
}

TEST_P(ReductionOrderTest, LargerDeltaNeverKeepsMoreVerticesDp) {
  Rng rng(static_cast<uint64_t>(GetParam() + 100));
  const Trajectory traj = RandomWalk(rng, 0, 400);
  size_t prev = std::numeric_limits<size_t>::max();
  for (const double delta : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const size_t kept = DouglasPeucker(traj, delta).NumVertices();
    EXPECT_LE(kept, prev);
    prev = kept;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionOrderTest,
                         ::testing::Range(10, 16));

// ---------------------------------------------- SegmentCovering behavior --

TEST(SimplifiedTrajectoryTest, SegmentCoveringAndIntersecting) {
  Rng rng(3);
  const Trajectory traj = RandomWalk(rng, 0, 50);
  const SimplifiedTrajectory simp = DouglasPeucker(traj, 1.0);
  ASSERT_GE(simp.NumSegments(), 1u);

  // Every in-lifetime tick is covered by a segment whose interval holds it.
  for (Tick t = simp.BeginTick(); t <= simp.EndTick(); ++t) {
    const auto idx = simp.SegmentCovering(t);
    ASSERT_TRUE(idx.has_value());
    EXPECT_TRUE(simp.GetSegment(*idx).CoversTick(t));
  }
  EXPECT_FALSE(simp.SegmentCovering(simp.BeginTick() - 1).has_value());
  EXPECT_FALSE(simp.SegmentCovering(simp.EndTick() + 1).has_value());

  const auto range = simp.SegmentsIntersecting(simp.BeginTick(),
                                               simp.EndTick());
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 0u);
  EXPECT_EQ(range->second, simp.NumSegments() - 1);

  EXPECT_FALSE(simp.SegmentsIntersecting(simp.EndTick() + 1,
                                         simp.EndTick() + 10)
                   .has_value());
}

TEST(SimplifiedTrajectoryTest, DegenerateAccessors) {
  SimplifiedTrajectory empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.NumSegments(), 0u);
  EXPECT_FALSE(empty.SegmentCovering(0).has_value());
  EXPECT_FALSE(empty.SegmentsIntersecting(0, 10).has_value());
}

}  // namespace
}  // namespace convoy
