#include "core/streaming.h"

#include <gtest/gtest.h>

#include "core/cmc.h"
#include "tests/test_util.h"
#include "traj/interpolate.h"

namespace convoy {
namespace {

using testutil::FromXRows;
using testutil::RandomClumpyDb;

// Feeds a database tick by tick (with the same interpolated virtual points
// CMC would use) and collects everything the stream emits.
std::vector<Convoy> RunStream(const TrajectoryDatabase& db,
                              const ConvoyQuery& query,
                              StreamingCmc::Options options = {}) {
  StreamingCmc stream(query, options);
  std::vector<Convoy> out;
  for (Tick t = db.BeginTick(); t <= db.EndTick(); ++t) {
    EXPECT_TRUE(stream.BeginTick(t).ok());
    for (const Trajectory& traj : db.trajectories()) {
      const auto pos = InterpolateAt(traj, t);
      if (pos.has_value()) {
        EXPECT_TRUE(stream.Report(traj.id(), *pos).ok());
      }
    }
    for (Convoy& c : stream.EndTick().value()) out.push_back(std::move(c));
  }
  for (Convoy& c : stream.Finish().value()) out.push_back(std::move(c));
  return RemoveDominated(std::move(out));
}

TEST(StreamingCmcTest, EmptyStream) {
  StreamingCmc stream(ConvoyQuery{2, 2, 1.0});
  EXPECT_TRUE(stream.Finish().value().empty());
}

TEST(StreamingCmcTest, SimpleConvoyEmittedAtFinish) {
  StreamingCmc stream(ConvoyQuery{2, 3, 1.0});
  for (Tick t = 0; t < 5; ++t) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(static_cast<double>(t), 0.0)).ok());
    ASSERT_TRUE(stream.Report(1, Point(static_cast<double>(t), 0.5)).ok());
    EXPECT_TRUE(stream.EndTick().value().empty());  // still alive
  }
  const auto result = stream.Finish().value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects, (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(result[0].start_tick, 0);
  EXPECT_EQ(result[0].end_tick, 4);
}

TEST(StreamingCmcTest, ConvoyEmittedWhenGroupDisperses) {
  StreamingCmc stream(ConvoyQuery{2, 3, 1.0});
  for (Tick t = 0; t < 4; ++t) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(static_cast<double>(t), 0.0)).ok());
    ASSERT_TRUE(stream.Report(1, Point(static_cast<double>(t), 0.5)).ok());
    ASSERT_TRUE(stream.EndTick().ok());
  }
  // Tick 4: they split; the convoy closes *now*, not at Finish.
  ASSERT_TRUE(stream.BeginTick(4).ok());
  ASSERT_TRUE(stream.Report(0, Point(4, 0)).ok());
  ASSERT_TRUE(stream.Report(1, Point(400, 0)).ok());
  const auto closed = stream.EndTick().value();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].end_tick, 3);
  EXPECT_TRUE(stream.Finish().value().empty());
}

TEST(StreamingCmcTest, SkippedTicksBreakConsecutiveness) {
  StreamingCmc stream(ConvoyQuery{2, 3, 1.0});
  for (const Tick t : {0, 1, 2}) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
    ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
    ASSERT_TRUE(stream.EndTick().ok());
  }
  // Jump to tick 5: ticks 3 and 4 are processed as empty, closing the
  // 3-tick convoy.
  ASSERT_TRUE(stream.BeginTick(5).ok());
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
  ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
  const auto closed = stream.EndTick().value();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].start_tick, 0);
  EXPECT_EQ(closed[0].end_tick, 2);
  // The restarted pair has only 1 tick so far.
  EXPECT_TRUE(stream.Finish().value().empty());
}

TEST(StreamingCmcTest, SilentObjectVanishesWithoutCarry) {
  StreamingCmc stream(ConvoyQuery{2, 3, 1.0});
  for (const Tick t : {0, 1}) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
    ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
    ASSERT_TRUE(stream.EndTick().ok());
  }
  ASSERT_TRUE(stream.BeginTick(2).ok());
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());  // object 1 silent -> pair broken
  ASSERT_TRUE(stream.EndTick().ok());
  EXPECT_TRUE(stream.Finish().value().empty());  // lifetime 2 < k
}

TEST(StreamingCmcTest, CarryForwardBridgesSilence) {
  StreamingCmc::Options options;
  options.carry_forward_ticks = 2;
  StreamingCmc stream(ConvoyQuery{2, 4, 1.0}, options);
  for (const Tick t : {0, 1}) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
    ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
    ASSERT_TRUE(stream.EndTick().ok());
  }
  ASSERT_TRUE(stream.BeginTick(2).ok());
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());  // 1 carried forward at (0, 0.5)
  ASSERT_TRUE(stream.EndTick().ok());
  ASSERT_TRUE(stream.BeginTick(3).ok());
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
  ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
  ASSERT_TRUE(stream.EndTick().ok());
  const auto result = stream.Finish().value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].Lifetime(), 4);
}

TEST(StreamingCmcTest, LastReportPerTickWins) {
  StreamingCmc stream(ConvoyQuery{2, 1, 1.0});
  ASSERT_TRUE(stream.BeginTick(0).ok());
  ASSERT_TRUE(stream.Report(0, Point(500, 500)).ok());
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());  // corrected fix
  ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
  ASSERT_TRUE(stream.EndTick().ok());
  const auto result = stream.Finish().value();
  ASSERT_EQ(result.size(), 1u);
}

TEST(StreamingCmcTest, LiveCandidatesVisible) {
  StreamingCmc stream(ConvoyQuery{2, 10, 1.0});
  ASSERT_TRUE(stream.BeginTick(0).ok());
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
  ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
  ASSERT_TRUE(stream.EndTick().ok());
  EXPECT_EQ(stream.LiveCandidates(), 1u);
}

// The headline property: streaming output == batch CMC output, when fed
// the same virtual points.
class StreamingEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamingEquivalenceTest, MatchesBatchCmc) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const TrajectoryDatabase db = RandomClumpyDb(rng, 18, 50, 50.0, 0.8, 0.9);
  const ConvoyQuery query{2, 5, 4.0};
  const auto batch = Cmc(db, query);
  const auto streamed = RunStream(db, query);
  EXPECT_TRUE(SameResultSet(batch, streamed))
      << "batch=" << batch.size() << " streamed=" << streamed.size();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingEquivalenceTest,
                         ::testing::Range(700, 712));

// Regression for the NDEBUG contract gap: a non-increasing tick used to be
// an assert (compiled out in release builds, silently corrupting candidate
// lifetimes). It must be a recoverable error that leaves the stream intact.
TEST(StreamingCmcTest, OutOfOrderTicksRejectedAndRecoverable) {
  StreamingCmc stream(ConvoyQuery{2, 2, 1.0});
  for (const Tick t : {0, 1}) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
    ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
    ASSERT_TRUE(stream.EndTick().ok());
  }

  // A replayed tick and a tick from the past are both rejected...
  const Status replay = stream.BeginTick(1);
  EXPECT_EQ(replay.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(replay.message().find("increasing"), std::string::npos);
  EXPECT_EQ(stream.BeginTick(-5).code(), StatusCode::kInvalidArgument);
  // ...without opening a tick or corrupting state.
  EXPECT_FALSE(stream.CurrentTick().has_value());
  EXPECT_EQ(stream.EndTick().status().code(),
            StatusCode::kFailedPrecondition);

  // The stream continues as if the bad input never arrived.
  ASSERT_TRUE(stream.BeginTick(2).ok());
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
  ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
  ASSERT_TRUE(stream.EndTick().ok());
  const auto result = stream.Finish().value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, 0);
  EXPECT_EQ(result[0].end_tick, 2);
}

TEST(StreamingCmcTest, ProtocolViolationsAreStatusErrors) {
  StreamingCmc stream(ConvoyQuery{2, 2, 1.0});
  // Report/EndTick outside a tick.
  EXPECT_EQ(stream.Report(0, Point(0, 0)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(stream.EndTick().status().code(),
            StatusCode::kFailedPrecondition);
  // Double BeginTick and Finish with a tick still open.
  ASSERT_TRUE(stream.BeginTick(0).ok());
  EXPECT_EQ(stream.BeginTick(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stream.Finish().status().code(),
            StatusCode::kFailedPrecondition);
  // The open tick is still usable after the rejected calls.
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
  ASSERT_TRUE(stream.EndTick().ok());
  EXPECT_TRUE(stream.Finish().ok());
}

// ---------------------------------------------------------------------------
// Session-lifecycle edges the server's ingest path relies on: every
// misuse is a recoverable Status, never UB, and the documented behaviors
// below are what src/server/session.cc builds its state machine on.

TEST(StreamingCmcTest, ReportAfterFinishIsRecoverableError) {
  StreamingCmc stream(ConvoyQuery{2, 2, 1.0});
  for (const Tick t : {0, 1, 2}) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
    ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
    ASSERT_TRUE(stream.EndTick().ok());
  }
  ASSERT_EQ(stream.Finish().value().size(), 1u);

  // Reports and EndTicks after Finish are rejected exactly like any
  // no-tick-open misuse — kFailedPrecondition, state untouched.
  EXPECT_EQ(stream.Report(0, Point(1, 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(stream.EndTick().status().code(),
            StatusCode::kFailedPrecondition);
  // A second Finish is harmless: the tracker was already flushed.
  EXPECT_TRUE(stream.Finish().ok());
  EXPECT_TRUE(stream.Finish().value().empty());

  // Documented behavior (not an error): the stream may resume after
  // Finish with a later tick — monotonicity still holds across the
  // flush, and lifetimes restart from scratch.
  ASSERT_TRUE(stream.BeginTick(1).code() == StatusCode::kInvalidArgument);
  ASSERT_TRUE(stream.BeginTick(3).ok());
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
  ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
  ASSERT_TRUE(stream.EndTick().ok());
  EXPECT_TRUE(stream.Finish().value().empty());  // lifetime 1 < k
}

TEST(StreamingCmcTest, EndTickWithZeroReportsBreaksCandidates) {
  StreamingCmc stream(ConvoyQuery{2, 2, 1.0});
  for (const Tick t : {0, 1}) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
    ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
    ASSERT_TRUE(stream.EndTick().ok());
  }
  // An explicitly empty tick is valid input (the server forwards ticks
  // whose every report was dropped); it ends the running convoy.
  ASSERT_TRUE(stream.BeginTick(2).ok());
  const auto closed = stream.EndTick();
  ASSERT_TRUE(closed.ok());
  ASSERT_EQ(closed->size(), 1u);
  EXPECT_EQ((*closed)[0].start_tick, 0);
  EXPECT_EQ((*closed)[0].end_tick, 1);
  EXPECT_EQ(stream.LiveCandidates(), 0u);
  EXPECT_TRUE(stream.Finish().value().empty());
}

TEST(StreamingCmcTest, CarryForwardVanishAndReturn) {
  // Object 1 goes silent for two ticks, then returns. With
  // carry_forward_ticks = 2 the silence is bridged both times, so the
  // convoy spans the whole feed as one group.
  StreamingCmc::Options options;
  options.carry_forward_ticks = 2;
  StreamingCmc stream(ConvoyQuery{2, 2, 1.0}, options);
  std::vector<Convoy> closed;
  for (Tick t = 0; t < 7; ++t) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
    const bool silent = t == 2 || t == 3;
    if (!silent) {
      ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
    }
    const auto result = stream.EndTick();
    ASSERT_TRUE(result.ok());
    closed.insert(closed.end(), result->begin(), result->end());
  }
  EXPECT_TRUE(closed.empty());
  const auto final_result = stream.Finish().value();
  ASSERT_EQ(final_result.size(), 1u);
  EXPECT_EQ(final_result[0].objects, (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(final_result[0].start_tick, 0);
  EXPECT_EQ(final_result[0].end_tick, 6);
}

TEST(StreamingCmcTest, CarryForwardExpiryEndsTheConvoy) {
  // Same feed, but the silence (two ticks) outlives carry_forward = 1:
  // the group breaks at the vanish and reforms at the return.
  StreamingCmc::Options options;
  options.carry_forward_ticks = 1;
  StreamingCmc stream(ConvoyQuery{2, 3, 1.0}, options);
  std::vector<Convoy> closed;
  for (Tick t = 0; t < 8; ++t) {
    ASSERT_TRUE(stream.BeginTick(t).ok());
    ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
    const bool silent = t == 3 || t == 4;
    if (!silent) {
      ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
    }
    const auto result = stream.EndTick();
    ASSERT_TRUE(result.ok());
    closed.insert(closed.end(), result->begin(), result->end());
  }
  const auto final_result = stream.Finish().value();
  closed.insert(closed.end(), final_result.begin(), final_result.end());
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].start_tick, 0);
  EXPECT_EQ(closed[0].end_tick, 3);  // tick 3 bridged by carry-forward
  EXPECT_EQ(closed[1].start_tick, 5);
  EXPECT_EQ(closed[1].end_tick, 7);
}

TEST(StreamingCmcTest, HandcraftedEquivalence) {
  const auto db = FromXRows({{0, 1, 2, 3, 4, 5, 6},
                             {50, 20, 2.2, 3.2, 4.2, 30, 60},
                             {0.4, 1.4, 2.4, 3.4, 4.4, 5.4, 6.4}});
  const ConvoyQuery query{2, 3, 1.0};
  EXPECT_TRUE(SameResultSet(Cmc(db, query), RunStream(db, query)));
}

}  // namespace
}  // namespace convoy
