// Parity tests of the SnapshotStore-backed execution paths: for every
// algorithm (CMC, CuTS, CuTS+, CuTS*, MC2) the store-backed result must be
// *identical* — not merely equivalent — to the legacy row-oriented path,
// across seeded random databases (dense and taxi-like gappy sampling) and
// 1/2/8 worker threads. This is the contract that lets the engine switch
// every query onto the store without a behavior flag.

#include <gtest/gtest.h>

#include <thread>

#include "core/cmc.h"
#include "core/cuts.h"
#include "core/engine.h"
#include "core/mc2.h"
#include "parallel/parallel_runner.h"
#include "tests/test_util.h"
#include "traj/snapshot_store.h"

namespace convoy {
namespace {

using testutil::RandomClumpyDb;

constexpr size_t kThreadCounts[] = {1, 2, 8};

TrajectoryDatabase MakeDb(uint64_t seed, double keep_prob = 1.0) {
  Rng rng(seed);
  return RandomClumpyDb(rng, /*num_objects=*/24, /*ticks=*/40,
                        /*world=*/60.0, /*step=*/1.0, keep_prob);
}

TEST(StoreParityTest, CmcMatchesLegacyExactly) {
  for (const uint64_t seed : {11u, 22u, 33u}) {
    // keep_prob 0.4 approximates the taxi workload: most ticks between
    // samples exist only as interpolated virtual points.
    for (const double keep_prob : {1.0, 0.8, 0.4}) {
      const TrajectoryDatabase db = MakeDb(seed, keep_prob);
      const SnapshotStore store = SnapshotStore::Build(db);
      const ConvoyQuery query{3, 4, 5.0};
      const auto legacy = Cmc(db, query);
      EXPECT_EQ(Cmc(store, query), legacy)
          << "seed " << seed << " keep_prob " << keep_prob;
      for (const size_t threads : kThreadCounts) {
        EXPECT_EQ(ParallelCmc(store, query, {}, nullptr, threads), legacy)
            << "seed " << seed << " keep_prob " << keep_prob << ", "
            << threads << " thread(s)";
      }
    }
  }
}

TEST(StoreParityTest, CmcRangeMatchesLegacy) {
  const TrajectoryDatabase db = MakeDb(5, 0.8);
  const SnapshotStore store = SnapshotStore::Build(db);
  const ConvoyQuery query{2, 3, 5.0};
  const Tick begin = db.BeginTick() + 5;
  const Tick end = db.EndTick() - 5;
  const auto legacy = CmcRange(db, query, begin, end);
  EXPECT_EQ(CmcRange(store, query, begin, end), legacy);
  for (const size_t threads : kThreadCounts) {
    EXPECT_EQ(
        ParallelCmcRange(store, query, begin, end, {}, nullptr, threads),
        legacy);
  }
}

TEST(StoreParityTest, CmcStatsCountEveryClustering) {
  const TrajectoryDatabase db = MakeDb(9);
  const SnapshotStore store = SnapshotStore::Build(db);
  const ConvoyQuery query{3, 4, 5.0};
  DiscoveryStats legacy_stats;
  (void)Cmc(db, query, {}, &legacy_stats);
  DiscoveryStats store_stats;
  (void)Cmc(store, query, {}, &store_stats);
  EXPECT_EQ(store_stats.num_clusterings, legacy_stats.num_clusterings);
  EXPECT_EQ(store_stats.num_convoys, legacy_stats.num_convoys);
}

TEST(StoreParityTest, Mc2MatchesLegacyExactly) {
  for (const uint64_t seed : {7u, 19u}) {
    for (const double keep_prob : {1.0, 0.4}) {
      const TrajectoryDatabase db = MakeDb(seed, keep_prob);
      const SnapshotStore store = SnapshotStore::Build(db);
      const ConvoyQuery query{3, 4, 5.0};
      Mc2Options options;
      options.theta = 0.6;
      EXPECT_EQ(Mc2(store, query, options), Mc2(db, query, options))
          << "seed " << seed << " keep_prob " << keep_prob;
    }
  }
}

// The engine executes every plan store-backed; the free functions run the
// legacy row-oriented path. Equality across all CuTS variants and thread
// counts proves the store changes nothing but the derivation cost.
TEST(StoreParityTest, EngineCutsVariantsMatchLegacyExactly) {
  for (const uint64_t seed : {3u, 23u}) {
    const TrajectoryDatabase db = MakeDb(seed, /*keep_prob=*/0.8);
    const ConvoyEngine engine(db);
    for (const auto variant :
         {CutsVariant::kCuts, CutsVariant::kCutsPlus, CutsVariant::kCutsStar}) {
      for (const size_t threads : kThreadCounts) {
        ConvoyQuery query{3, 4, 5.0};
        query.num_threads = threads;
        const auto legacy = Cuts(db, query, variant);
        EXPECT_EQ(engine.Discover(query, variant), legacy)
            << ToString(variant) << " seed " << seed << ", " << threads
            << " thread(s)";
      }
    }
  }
}

TEST(StoreParityTest, EngineCmcAndMc2MatchLegacyExactly) {
  const TrajectoryDatabase db = MakeDb(41, 0.7);
  const ConvoyEngine engine(db);
  for (const size_t threads : kThreadCounts) {
    ConvoyQuery query{3, 4, 5.0};
    query.num_threads = threads;
    EXPECT_EQ(engine.DiscoverExact(query), Cmc(db, query))
        << threads << " thread(s)";
    const auto plan = engine.Prepare(query, AlgorithmChoice::kMc2);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(engine.Execute(*plan).value().convoys(), Mc2(db, query))
        << threads << " thread(s)";
  }
}

TEST(StoreParityTest, PrepareReportsStoreBuildThenReuse) {
  const TrajectoryDatabase db = MakeDb(55);
  const ConvoyEngine engine(db);
  const ConvoyQuery query{3, 4, 5.0};

  const auto first = engine.Prepare(query, AlgorithmChoice::kCmc);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->store_cache, PlanCacheStatus::kMiss);  // built here
  EXPECT_EQ(first->store_ticks, SnapshotStore::Build(db).NumTicks());
  EXPECT_GT(first->store_points, 0u);

  const auto second = engine.Prepare(query, AlgorithmChoice::kCutsStar);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->store_cache, PlanCacheStatus::kHit);  // reused
  EXPECT_EQ(second->store_build_seconds, 0.0);

  // EXPLAIN surfaces the provenance.
  EXPECT_NE(first->Explain().find("snapshot store: built"),
            std::string::npos);
  EXPECT_NE(second->Explain().find("snapshot store: reused"),
            std::string::npos);
}

TEST(StoreParityTest, CutsOnlyWorkloadNeverBuildsTheStore) {
  // The CuTS family clusters simplified polylines, not snapshots: a
  // workload that never runs CMC/MC2 must never pay the columnar build.
  const TrajectoryDatabase db = MakeDb(63);
  const ConvoyEngine engine(db);
  const auto plan = engine.Prepare(ConvoyQuery{3, 4, 5.0},
                                   AlgorithmChoice::kCutsStar);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->store_cache, PlanCacheStatus::kNotApplicable);
  const auto result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(engine.PeekStore(), nullptr);  // still not built

  // Once a snapshot-consuming plan builds it, CuTS plans borrow it.
  (void)engine.Prepare(ConvoyQuery{3, 4, 5.0}, AlgorithmChoice::kCmc);
  const auto borrowing = engine.Prepare(ConvoyQuery{3, 4, 5.0},
                                        AlgorithmChoice::kCutsStar);
  ASSERT_TRUE(borrowing.ok());
  EXPECT_EQ(borrowing->store_cache, PlanCacheStatus::kHit);
  EXPECT_EQ(engine.Execute(*borrowing).value().convoys(),
            Cuts(db, ConvoyQuery{3, 4, 5.0}, CutsVariant::kCutsStar));
}

TEST(StoreParityTest, PlannerWithoutStoreProviderStaysRowOriented) {
  const TrajectoryDatabase db = MakeDb(60);
  const QueryPlanner planner(db);
  const QueryPlan plan = planner.Plan(ConvoyQuery{3, 4, 5.0});
  EXPECT_EQ(plan.store_cache, PlanCacheStatus::kNotApplicable);
  EXPECT_NE(plan.Explain().find("snapshot store: n/a"), std::string::npos);
}

TEST(StoreParityTest, OverBudgetDatabaseDeclinesStore) {
  // A sparse feed whose ticks look like epoch seconds: two samples per
  // object, lifetimes spanning ~2^26 ticks. Materializing the store would
  // need tens of millions of interpolated points; the engine must decline
  // and plan the row-oriented path instead of OOM-ing.
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 3; ++id) {
    Trajectory traj(id);
    traj.Append(0.0, id, 0);
    traj.Append(1.0, id, Tick{1} << 26);
    db.Add(std::move(traj));
  }
  ASSERT_GT(SnapshotStore::EstimateColumnarSlots(db),
            kSnapshotStoreSlotBudget);
  const ConvoyEngine engine(db);
  EXPECT_EQ(engine.Store(1), nullptr);
  EXPECT_EQ(engine.Store(1), nullptr);  // decline memoized per generation
  const auto plan = engine.Prepare(ConvoyQuery{2, 2, 5.0});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->store_cache, PlanCacheStatus::kNotApplicable);
}

TEST(StoreParityTest, EmptyDatabaseThroughEngine) {
  const ConvoyEngine engine{TrajectoryDatabase{}};
  const ConvoyQuery query{3, 4, 5.0};
  const auto plan = engine.Prepare(query);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->store_ticks, 0u);
  const auto result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Count(), 0u);
}

// Concurrent engine queries share one store build and one grid cache.
TEST(StoreParityTest, ConcurrentStoreAccessIsSafeAndIdentical) {
  const TrajectoryDatabase db = MakeDb(71);
  const ConvoyEngine engine(db);
  const ConvoyQuery query{3, 4, 5.0};
  const auto expected = Cmc(db, query);

  constexpr size_t kCallers = 4;
  std::vector<std::vector<Convoy>> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (size_t i = 0; i < kCallers; ++i) {
    callers.emplace_back([&engine, &results, &query, i] {
      results[i] = engine.DiscoverExact(query);
    });
  }
  for (std::thread& t : callers) t.join();
  for (const auto& result : results) EXPECT_EQ(result, expected);
}

}  // namespace
}  // namespace convoy
