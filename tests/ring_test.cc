#include "server/ring.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/service_thread.h"

namespace convoy::server {
namespace {

TEST(BoundedRingTest, FifoOrder) {
  BoundedRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ring.TryPush(i), PushResult::kAccepted);
  }
  for (int i = 0; i < 5; ++i) {
    const auto item = ring.TryPop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(BoundedRingTest, TryPushFailsWhenFullNeverBlocks) {
  BoundedRing<int> ring(2);
  EXPECT_EQ(ring.TryPush(1), PushResult::kAccepted);
  EXPECT_EQ(ring.TryPush(2), PushResult::kAccepted);
  // Full — flow control, not blocking (and not kClosed: this is transient).
  EXPECT_EQ(ring.TryPush(3), PushResult::kFull);
  EXPECT_EQ(ring.Size(), 2u);
  ASSERT_EQ(ring.TryPop().value(), 1);
  EXPECT_EQ(ring.TryPush(3), PushResult::kAccepted);  // a pop frees a slot
}

TEST(BoundedRingTest, ZeroCapacityFloorsAtOne) {
  BoundedRing<int> ring(0);
  EXPECT_EQ(ring.Capacity(), 1u);
  EXPECT_EQ(ring.TryPush(7), PushResult::kAccepted);
  EXPECT_EQ(ring.TryPush(8), PushResult::kFull);
}

TEST(BoundedRingTest, HighWaterTracksDeepestQueue) {
  BoundedRing<int> ring(4);
  EXPECT_EQ(ring.HighWater(), 0u);
  (void)ring.TryPush(1);
  (void)ring.TryPush(2);
  (void)ring.TryPush(3);
  (void)ring.TryPop();
  (void)ring.TryPop();
  (void)ring.TryPop();
  (void)ring.TryPush(4);
  EXPECT_EQ(ring.HighWater(), 3u);  // depth peaked at 3, not current size
}

TEST(BoundedRingTest, CloseRejectsPushesButDrainsAcceptedItems) {
  BoundedRing<int> ring(4);
  EXPECT_EQ(ring.TryPush(1), PushResult::kAccepted);
  EXPECT_EQ(ring.TryPush(2), PushResult::kAccepted);
  ring.Close();
  ring.Close();  // idempotent
  EXPECT_TRUE(ring.Closed());
  EXPECT_EQ(ring.TryPush(3), PushResult::kClosed);
  // Accepted work survives the close...
  EXPECT_EQ(ring.Pop().value(), 1);
  EXPECT_EQ(ring.Pop().value(), 2);
  // ...and a drained closed ring is the consumer's exit signal.
  EXPECT_FALSE(ring.Pop().has_value());
}

TEST(BoundedRingTest, ClosedWinsOverFull) {
  // A ring that is both full and closed must report kClosed: the producer
  // turns kFull into "retry later", which would spin forever here.
  BoundedRing<int> ring(1);
  EXPECT_EQ(ring.TryPush(1), PushResult::kAccepted);
  ring.Close();
  EXPECT_EQ(ring.TryPush(2), PushResult::kClosed);
}

TEST(BoundedRingTest, PopBlocksUntilPush) {
  BoundedRing<std::string> ring(2);
  std::string got;
  ServiceThread consumer("ring-test-consumer", [&] {
    const auto item = ring.Pop();  // blocks: ring starts empty
    if (item.has_value()) got = *item;
  });
  EXPECT_EQ(ring.TryPush("hello"), PushResult::kAccepted);
  consumer.Join();
  EXPECT_EQ(got, "hello");
}

TEST(BoundedRingTest, PopBlocksUntilClose) {
  BoundedRing<int> ring(2);
  bool exited_empty = false;
  ServiceThread consumer("ring-test-consumer", [&] {
    exited_empty = !ring.Pop().has_value();
  });
  ring.Close();
  consumer.Join();
  EXPECT_TRUE(exited_empty);
}

// Multi-producer / single-consumer under real concurrency: every accepted
// item arrives exactly once, and each producer's items keep their order.
TEST(BoundedRingTest, MpscDeliversEveryAcceptedItemInProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedRing<std::pair<int, int>> ring(8);

  std::vector<std::vector<int>> received(kProducers);
  ServiceThread consumer("ring-test-consumer", [&] {
    for (;;) {
      const auto item = ring.Pop();
      if (!item.has_value()) return;
      received[static_cast<size_t>(item->first)].push_back(item->second);
    }
  });

  std::vector<int> accepted(kProducers, 0);
  {
    std::vector<ServiceThread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back("ring-test-producer", [&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          // Spin on flow control like the server's loadgen clients do.
          while (ring.TryPush({p, i}) != PushResult::kAccepted) {
            std::this_thread::yield();
          }
          ++accepted[static_cast<size_t>(p)];
        }
      });
    }
  }
  ring.Close();
  consumer.Join();

  for (int p = 0; p < kProducers; ++p) {
    const auto& items = received[static_cast<size_t>(p)];
    ASSERT_EQ(items.size(), static_cast<size_t>(kPerProducer));
    EXPECT_EQ(accepted[static_cast<size_t>(p)], kPerProducer);
    // Per-producer FIFO: the sequence 0..kPerProducer-1 in order.
    for (int i = 0; i < kPerProducer; ++i) EXPECT_EQ(items[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace convoy::server
