#include "geom/segment.h"

#include <gtest/gtest.h>

namespace convoy {
namespace {

TEST(SegmentTest, LengthAndAt) {
  const Segment s(Point(0, 0), Point(6, 8));
  EXPECT_DOUBLE_EQ(s.Length(), 10.0);
  EXPECT_EQ(s.At(0.0), Point(0, 0));
  EXPECT_EQ(s.At(1.0), Point(6, 8));
  EXPECT_EQ(s.At(0.5), Point(3, 4));
}

TEST(SegmentTest, DegenerateSegment) {
  const Segment s(Point(2, 3), Point(2, 3));
  EXPECT_DOUBLE_EQ(s.Length(), 0.0);
  EXPECT_EQ(s.At(0.7), Point(2, 3));
}

TEST(TimedSegmentTest, TickAccessors) {
  const TimedSegment s(TimedPoint(0, 0, 10), TimedPoint(10, 0, 20));
  EXPECT_EQ(s.BeginTick(), 10);
  EXPECT_EQ(s.EndTick(), 20);
  EXPECT_TRUE(s.CoversTick(10));
  EXPECT_TRUE(s.CoversTick(15));
  EXPECT_TRUE(s.CoversTick(20));
  EXPECT_FALSE(s.CoversTick(9));
  EXPECT_FALSE(s.CoversTick(21));
}

TEST(TimedSegmentTest, IntersectsTickRange) {
  const TimedSegment s(TimedPoint(0, 0, 10), TimedPoint(10, 0, 20));
  EXPECT_TRUE(s.IntersectsTickRange(0, 10));
  EXPECT_TRUE(s.IntersectsTickRange(20, 30));
  EXPECT_TRUE(s.IntersectsTickRange(12, 14));
  EXPECT_TRUE(s.IntersectsTickRange(5, 25));
  EXPECT_FALSE(s.IntersectsTickRange(0, 9));
  EXPECT_FALSE(s.IntersectsTickRange(21, 30));
}

TEST(TimedSegmentTest, PositionAtLinearInterpolation) {
  // The paper's l'(t) = p_u + (t-u)/(v-u) (p_v - p_u).
  const TimedSegment s(TimedPoint(0, 0, 0), TimedPoint(10, 20, 10));
  EXPECT_EQ(s.PositionAt(0.0), Point(0, 0));
  EXPECT_EQ(s.PositionAt(10.0), Point(10, 20));
  EXPECT_EQ(s.PositionAt(5.0), Point(5, 10));
  EXPECT_EQ(s.PositionAt(2.5), Point(2.5, 5));
}

TEST(TimedSegmentTest, PositionAtClampsOutsideInterval) {
  const TimedSegment s(TimedPoint(0, 0, 0), TimedPoint(10, 0, 10));
  EXPECT_EQ(s.PositionAt(-5.0), Point(0, 0));
  EXPECT_EQ(s.PositionAt(15.0), Point(10, 0));
}

TEST(TimedSegmentTest, PositionAtZeroDurationReturnsStart) {
  const TimedSegment s(TimedPoint(1, 2, 5), TimedPoint(9, 9, 5));
  EXPECT_EQ(s.PositionAt(5.0), Point(1, 2));
}

TEST(TimedSegmentTest, Velocity) {
  const TimedSegment s(TimedPoint(0, 0, 0), TimedPoint(10, -20, 5));
  EXPECT_EQ(s.Velocity(), Point(2, -4));
}

TEST(TimedSegmentTest, VelocityZeroDuration) {
  const TimedSegment s(TimedPoint(0, 0, 5), TimedPoint(10, 10, 5));
  EXPECT_EQ(s.Velocity(), Point(0, 0));
}

TEST(OverlapTicksTest, OverlappingIntervals) {
  const TimedSegment a(TimedPoint(0, 0, 0), TimedPoint(1, 0, 10));
  const TimedSegment b(TimedPoint(0, 1, 5), TimedPoint(1, 1, 15));
  const TickOverlap ov = OverlapTicks(a, b);
  EXPECT_TRUE(ov.valid);
  EXPECT_EQ(ov.lo, 5);
  EXPECT_EQ(ov.hi, 10);
}

TEST(OverlapTicksTest, TouchingIntervals) {
  const TimedSegment a(TimedPoint(0, 0, 0), TimedPoint(1, 0, 10));
  const TimedSegment b(TimedPoint(0, 1, 10), TimedPoint(1, 1, 20));
  const TickOverlap ov = OverlapTicks(a, b);
  EXPECT_TRUE(ov.valid);
  EXPECT_EQ(ov.lo, 10);
  EXPECT_EQ(ov.hi, 10);
}

TEST(OverlapTicksTest, DisjointIntervals) {
  const TimedSegment a(TimedPoint(0, 0, 0), TimedPoint(1, 0, 10));
  const TimedSegment b(TimedPoint(0, 1, 11), TimedPoint(1, 1, 20));
  EXPECT_FALSE(OverlapTicks(a, b).valid);
  EXPECT_FALSE(OverlapTicks(b, a).valid);
}

}  // namespace
}  // namespace convoy
