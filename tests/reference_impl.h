#ifndef CONVOY_TESTS_REFERENCE_IMPL_H_
#define CONVOY_TESTS_REFERENCE_IMPL_H_

// Retained reference implementations of the hot-path structures that PR 5
// rebuilt (flat-CSR GridIndex, arena DBSCAN, label-intersection
// CandidateTracker): the pre-rewrite unordered_map-of-buckets grid, the
// deque-frontier DBSCAN with per-call allocations, and the
// set_intersection + std::map candidate step. They are deliberately the
// old code, kept verbatim where possible, so
//
//  * tests/hotpath_parity_test.cc can assert the optimized paths are
//    bit-identical to first-principles implementations on adversarial
//    inputs, and
//  * bench/micro_components.cc and the BENCH_hotpath.json section of
//    bench/scalability can report old-vs-new shape speedups from inside
//    one binary.
//
// Header-only on purpose: it is test/bench scaffolding, not part of the
// library.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "cluster/dbscan.h"
#include "core/candidate.h"
#include "geom/point.h"

namespace convoy::reference {

/// The pre-PR-5 uniform-grid index: unordered_map from packed cell key to
/// a bucket of point indices, 3x3 / multi-ring block probing with one hash
/// lookup per cell.
class ReferenceGridIndex {
 public:
  ReferenceGridIndex(const std::vector<Point>& points, double cell_size)
      : points_(points), cell_size_(cell_size) {
    if (!std::isfinite(cell_size_) || cell_size_ <= 0.0) cell_size_ = 1.0;
    cells_.reserve(points_.size());
    for (size_t i = 0; i < points_.size(); ++i) {
      cells_[KeyFor(points_[i].x, points_[i].y)].push_back(
          static_cast<uint32_t>(i));
    }
  }

  std::vector<size_t> WithinRadius(const Point& probe, double radius) const {
    std::vector<size_t> out;
    WithinRadiusInto(probe, radius, &out);
    return out;
  }

  void WithinRadiusInto(const Point& probe, double radius,
                        std::vector<size_t>* out) const {
    out->clear();
    if (cells_.empty() || !(radius >= 0.0)) return;
    const double r2 = radius * radius;
    const double rings = std::max(1.0, std::ceil(radius / cell_size_));
    const double block_cells = (2.0 * rings + 1.0) * (2.0 * rings + 1.0);
    if (!(block_cells < static_cast<double>(cells_.size()))) {
      for (const auto& [key, bucket] : cells_) {
        for (const uint32_t idx : bucket) {
          if (D2(points_[idx], probe) <= r2) out->push_back(idx);
        }
      }
      return;
    }
    const int64_t reach = static_cast<int64_t>(rings);
    const int32_t cx = CellCoord(probe.x);
    const int32_t cy = CellCoord(probe.y);
    for (int64_t dx = -reach; dx <= reach; ++dx) {
      for (int64_t dy = -reach; dy <= reach; ++dy) {
        const auto it = cells_.find(PackCell(static_cast<int32_t>(cx + dx),
                                             static_cast<int32_t>(cy + dy)));
        if (it == cells_.end()) continue;
        for (const uint32_t idx : it->second) {
          if (D2(points_[idx], probe) <= r2) out->push_back(idx);
        }
      }
    }
  }

  size_t NumPoints() const { return points_.size(); }

 private:
  static uint64_t PackCell(int32_t cx, int32_t cy) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(cy));
  }
  int32_t CellCoord(double v) const {
    const double c = std::floor(v / cell_size_);
    if (!(c >= static_cast<double>(INT32_MIN))) return INT32_MIN;
    if (c >= static_cast<double>(INT32_MAX)) return INT32_MAX;
    return static_cast<int32_t>(c);
  }
  uint64_t KeyFor(double x, double y) const {
    return PackCell(CellCoord(x), CellCoord(y));
  }

  std::vector<Point> points_;
  double cell_size_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> cells_;
};

/// The pre-PR-5 DBSCAN: fresh label array and deque frontier per call,
/// neighborhoods from the reference grid. Same expansion order as the
/// production DbscanImpl, so over the same grid answers the Clustering is
/// identical.
inline Clustering ReferenceDbscan(const std::vector<Point>& points,
                                  double eps, size_t min_pts) {
  Clustering result;
  const size_t n = points.size();
  if (n == 0) return result;
  const ReferenceGridIndex index(points, eps);

  constexpr uint32_t kUnvisited = 0xFFFFFFFF;
  constexpr uint32_t kNoise = 0xFFFFFFFE;
  std::vector<uint32_t> label(n, kUnvisited);

  std::vector<size_t> neighbors;
  std::deque<size_t> frontier;

  for (size_t seed = 0; seed < n; ++seed) {
    if (label[seed] != kUnvisited) continue;
    index.WithinRadiusInto(points[seed], eps, &neighbors);
    if (neighbors.size() < min_pts) {
      label[seed] = kNoise;
      continue;
    }
    const uint32_t cluster_id = static_cast<uint32_t>(result.clusters.size());
    result.clusters.emplace_back();
    label[seed] = cluster_id;
    result.clusters.back().push_back(seed);

    frontier.assign(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      const size_t p = frontier.front();
      frontier.pop_front();
      if (label[p] == kNoise) {
        label[p] = cluster_id;
        result.clusters.back().push_back(p);
        continue;
      }
      if (label[p] != kUnvisited) continue;
      label[p] = cluster_id;
      result.clusters.back().push_back(p);
      index.WithinRadiusInto(points[p], eps, &neighbors);
      if (neighbors.size() >= min_pts) {
        for (const size_t q : neighbors) {
          if (label[q] == kUnvisited || label[q] == kNoise) {
            frontier.push_back(q);
          }
        }
      }
    }
  }
  return result;
}

/// The pre-PR-5 candidate step: one set_intersection per (candidate,
/// cluster) pair, successors deduped through an ordered map keyed on the
/// object vector. Drop-in shape-compatible with CandidateTracker.
class ReferenceCandidateTracker {
 public:
  ReferenceCandidateTracker(size_t m, Tick k) : m_(m), k_(k) {}

  void Advance(const std::vector<std::vector<ObjectId>>& clusters,
               Tick step_start, Tick step_end, Tick step_weight,
               std::vector<Candidate>* completed) {
    std::map<std::vector<ObjectId>, Candidate> next;
    const auto offer = [&next](Candidate cand) {
      auto [it, inserted] = next.try_emplace(cand.objects, cand);
      if (!inserted && cand.lifetime > it->second.lifetime) it->second = cand;
    };

    for (const Candidate& v : live_) {
      bool continued_intact = false;
      for (const std::vector<ObjectId>& c : clusters) {
        std::vector<ObjectId> common = IntersectSorted(v.objects, c);
        if (common.size() < m_) continue;
        continued_intact |= common.size() == v.objects.size();
        Candidate successor;
        successor.objects = std::move(common);
        successor.start_tick = v.start_tick;
        successor.end_tick = step_end;
        successor.lifetime = v.lifetime + step_weight;
        offer(std::move(successor));
      }
      if (!continued_intact && v.lifetime >= k_) completed->push_back(v);
    }

    for (const std::vector<ObjectId>& c : clusters) {
      if (c.size() < m_) continue;
      Candidate fresh;
      fresh.objects = c;
      fresh.start_tick = step_start;
      fresh.end_tick = step_end;
      fresh.lifetime = step_weight;
      offer(std::move(fresh));
    }

    live_.clear();
    live_.reserve(next.size());
    for (auto& [objects, cand] : next) live_.push_back(std::move(cand));
  }

  void Flush(std::vector<Candidate>* completed) {
    for (Candidate& v : live_) {
      if (v.lifetime >= k_) completed->push_back(std::move(v));
    }
    live_.clear();
  }

  size_t LiveCount() const { return live_.size(); }
  const std::vector<Candidate>& live() const { return live_; }

 private:
  size_t m_;
  Tick k_;
  std::vector<Candidate> live_;
};

}  // namespace convoy::reference

#endif  // CONVOY_TESTS_REFERENCE_IMPL_H_
