#include "query/planner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "query/algorithm.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace convoy {
namespace {

using testutil::RandomClumpyDb;

TrajectoryDatabase TinyDb() {
  Rng rng(7);
  // 10 objects x 30 ticks = at most 300 points: far below the auto-exact
  // threshold.
  return RandomClumpyDb(rng, 10, 30, 40.0, 0.8);
}

TrajectoryDatabase LargeDb() {
  Rng rng(8);
  // 30 objects x 300 ticks ≈ 9000 points: above the threshold.
  return RandomClumpyDb(rng, 30, 300, 80.0, 0.8);
}

TEST(PlannerTest, ChooseAutoThreshold) {
  DatabaseStats stats;
  stats.total_points = kAutoExactMaxPoints;
  EXPECT_EQ(QueryPlanner::ChooseAuto(stats), AlgorithmId::kCmc);
  stats.total_points = kAutoExactMaxPoints + 1;
  EXPECT_EQ(QueryPlanner::ChooseAuto(stats), AlgorithmId::kCutsStar);
  stats.total_points = 0;  // empty database
  EXPECT_EQ(QueryPlanner::ChooseAuto(stats), AlgorithmId::kCmc);
}

TEST(PlannerTest, AutoPicksCmcForTinyInput) {
  const ConvoyEngine engine(TinyDb());
  const auto plan = engine.Prepare(ConvoyQuery{3, 6, 4.0});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, AlgorithmId::kCmc);
  EXPECT_EQ(plan->requested, AlgorithmChoice::kAuto);
  EXPECT_EQ(plan->cache, PlanCacheStatus::kNotApplicable);
  EXPECT_EQ(plan->delta, 0.0);
  EXPECT_EQ(plan->lambda, 0);
}

TEST(PlannerTest, AutoPicksCutsStarForLargeInput) {
  const ConvoyEngine engine(LargeDb());
  const auto plan = engine.Prepare(ConvoyQuery{3, 6, 4.0});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, AlgorithmId::kCutsStar);
  EXPECT_GT(plan->delta, 0.0);
  EXPECT_GE(plan->lambda, 2);
  EXPECT_TRUE(plan->delta_derived);
  EXPECT_TRUE(plan->lambda_derived);
}

TEST(PlannerTest, ExplicitChoicePassesThrough) {
  const ConvoyEngine engine(TinyDb());
  const ConvoyQuery query{3, 6, 4.0};
  const struct {
    AlgorithmChoice choice;
    AlgorithmId id;
  } cases[] = {
      {AlgorithmChoice::kCmc, AlgorithmId::kCmc},
      {AlgorithmChoice::kCuts, AlgorithmId::kCuts},
      {AlgorithmChoice::kCutsPlus, AlgorithmId::kCutsPlus},
      {AlgorithmChoice::kCutsStar, AlgorithmId::kCutsStar},
      {AlgorithmChoice::kMc2, AlgorithmId::kMc2},
  };
  for (const auto& c : cases) {
    const auto plan = engine.Prepare(query, c.choice);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->algorithm, c.id) << ToString(c.choice);
    EXPECT_EQ(plan->requested, c.choice);
  }
}

TEST(PlannerTest, VariantConfiguresFilter) {
  const ConvoyEngine engine(TinyDb());
  const ConvoyQuery query{3, 6, 4.0};
  const auto cuts = engine.Prepare(query, AlgorithmChoice::kCuts);
  ASSERT_TRUE(cuts.ok());
  EXPECT_EQ(cuts->filter.simplifier, SimplifierKind::kDp);
  EXPECT_EQ(cuts->filter.distance, SegmentDistanceKind::kDll);
  const auto star = engine.Prepare(query, AlgorithmChoice::kCutsStar);
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->filter.simplifier, SimplifierKind::kDpStar);
  EXPECT_EQ(star->filter.distance, SegmentDistanceKind::kDStar);
}

TEST(PlannerTest, PrepareRejectsInvalidQueries) {
  const ConvoyEngine engine(TinyDb());
  EXPECT_EQ(engine.Prepare(ConvoyQuery{1, 2, 1.0}).status().code(),
            StatusCode::kInvalidArgument);  // m < 2
  EXPECT_EQ(engine.Prepare(ConvoyQuery{2, 0, 1.0}).status().code(),
            StatusCode::kInvalidArgument);  // k < 1
  EXPECT_EQ(engine.Prepare(ConvoyQuery{2, 2, 0.0}).status().code(),
            StatusCode::kInvalidArgument);  // e <= 0
  EXPECT_EQ(engine.Prepare(ConvoyQuery{2, 2, std::nan("")}).status().code(),
            StatusCode::kInvalidArgument);
  CutsFilterOptions bad;
  bad.delta = std::nan("");
  EXPECT_EQ(engine
                .Prepare(ConvoyQuery{2, 2, 1.0}, AlgorithmChoice::kCutsStar,
                         bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PlannerTest, ExplicitParametersAreNotRederived) {
  const ConvoyEngine engine(LargeDb());
  CutsFilterOptions options;
  options.delta = 1.25;
  options.lambda = 7;
  const auto plan =
      engine.Prepare(ConvoyQuery{3, 6, 4.0}, AlgorithmChoice::kCutsStar,
                     options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->delta, 1.25);
  EXPECT_EQ(plan->lambda, 7);
  EXPECT_FALSE(plan->delta_derived);
  EXPECT_FALSE(plan->lambda_derived);
  EXPECT_EQ(plan->filter.delta, 1.25);
  EXPECT_EQ(plan->filter.lambda, 7);
}

TEST(PlannerTest, SimplificationCacheHitMissRecorded) {
  const ConvoyEngine engine(LargeDb());
  CutsFilterOptions options;
  options.delta = 2.0;
  const ConvoyQuery query{3, 6, 4.0};
  const auto first =
      engine.Prepare(query, AlgorithmChoice::kCutsStar, options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cache, PlanCacheStatus::kMiss);
  const auto second =
      engine.Prepare(query, AlgorithmChoice::kCutsStar, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache, PlanCacheStatus::kHit);
  EXPECT_EQ(second->simplify_seconds, 0.0);
}

TEST(PlannerTest, ExplainNamesAlgorithmAndParameters) {
  const ConvoyEngine engine(LargeDb());
  const auto plan = engine.Prepare(ConvoyQuery{3, 6, 4.0});
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->Explain();
  EXPECT_NE(text.find("CuTS*"), std::string::npos) << text;
  EXPECT_NE(text.find("delta"), std::string::npos) << text;
  EXPECT_NE(text.find("lambda"), std::string::npos) << text;
  EXPECT_NE(text.find("auto"), std::string::npos) << text;
  const auto exact = engine.Prepare(ConvoyQuery{3, 6, 4.0},
                                    AlgorithmChoice::kCmc);
  ASSERT_TRUE(exact.ok());
  EXPECT_NE(exact->Explain().find("CMC"), std::string::npos);
  EXPECT_NE(exact->Explain().find("explicit"), std::string::npos);
}

TEST(PlannerTest, StandalonePlannerWorksWithoutEngine) {
  const TrajectoryDatabase db = LargeDb();
  const QueryPlanner planner(db);
  const QueryPlan plan = planner.Plan(ConvoyQuery{3, 6, 4.0});
  EXPECT_EQ(plan.algorithm, AlgorithmId::kCutsStar);
  EXPECT_GT(plan.delta, 0.0);
  // No cache bound: status stays n/a.
  EXPECT_EQ(plan.cache, PlanCacheStatus::kNotApplicable);
  EXPECT_GT(plan.estimated_clusterings, 0u);
}

TEST(AlgorithmRegistryTest, AllAlgorithmsRegistered) {
  const auto& all = AllAlgorithms();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(GetAlgorithm(AlgorithmId::kCmc).Name(), "CMC");
  EXPECT_EQ(GetAlgorithm(AlgorithmId::kCuts).Name(), "CuTS");
  EXPECT_EQ(GetAlgorithm(AlgorithmId::kCutsPlus).Name(), "CuTS+");
  EXPECT_EQ(GetAlgorithm(AlgorithmId::kCutsStar).Name(), "CuTS*");
  EXPECT_EQ(GetAlgorithm(AlgorithmId::kMc2).Name(), "MC2");
  for (const ConvoyAlgorithm* algo : all) {
    EXPECT_EQ(&GetAlgorithm(algo->Id()), algo);
  }
  // The approximate baseline advertises itself as such.
  EXPECT_FALSE(GetAlgorithm(AlgorithmId::kMc2).Capabilities().exact);
  EXPECT_TRUE(GetAlgorithm(AlgorithmId::kCutsStar).Capabilities().exact);
}

TEST(AlgorithmRegistryTest, ParseAlgorithmChoiceRoundTrips) {
  EXPECT_EQ(ParseAlgorithmChoice("auto"), AlgorithmChoice::kAuto);
  EXPECT_EQ(ParseAlgorithmChoice("cmc"), AlgorithmChoice::kCmc);
  EXPECT_EQ(ParseAlgorithmChoice("cuts"), AlgorithmChoice::kCuts);
  EXPECT_EQ(ParseAlgorithmChoice("cuts+"), AlgorithmChoice::kCutsPlus);
  EXPECT_EQ(ParseAlgorithmChoice("cuts*"), AlgorithmChoice::kCutsStar);
  EXPECT_EQ(ParseAlgorithmChoice("mc2"), AlgorithmChoice::kMc2);
  EXPECT_FALSE(ParseAlgorithmChoice("nonsense").has_value());
  EXPECT_FALSE(ParseAlgorithmChoice("CMC").has_value());
}

}  // namespace
}  // namespace convoy
