#ifndef CONVOY_TESTS_TEST_UTIL_H_
#define CONVOY_TESTS_TEST_UTIL_H_

#include <vector>

#include "traj/database.h"
#include "util/random.h"

namespace convoy::testutil {

/// Builds a database where each row of `positions` gives the per-tick x
/// coordinates of one object (y = object index * `row_gap`), starting at
/// tick `t0`. A NaN-free, compact way to script convoy scenarios.
inline TrajectoryDatabase FromXRows(const std::vector<std::vector<double>>& xs,
                                    double row_gap = 0.0, Tick t0 = 0) {
  TrajectoryDatabase db;
  for (size_t i = 0; i < xs.size(); ++i) {
    Trajectory traj(static_cast<ObjectId>(i));
    for (size_t j = 0; j < xs[i].size(); ++j) {
      traj.Append(xs[i][j], row_gap * static_cast<double>(i),
                  t0 + static_cast<Tick>(j));
    }
    db.Add(std::move(traj));
  }
  return db;
}

/// A clumpy random database: `num_objects` objects over `ticks` ticks in a
/// `world` x `world` square; objects are biased toward a handful of shared
/// anchor routes so density-connected groups actually form. Good stress
/// input for CMC-vs-CuTS equivalence testing.
inline TrajectoryDatabase RandomClumpyDb(Rng& rng, size_t num_objects,
                                         Tick ticks, double world,
                                         double step, double keep_prob = 1.0) {
  TrajectoryDatabase db;
  const size_t num_anchors = 3;
  std::vector<Point> anchor_start(num_anchors);
  std::vector<Point> anchor_vel(num_anchors);
  for (size_t a = 0; a < num_anchors; ++a) {
    anchor_start[a] = Point(rng.Uniform(0, world), rng.Uniform(0, world));
    anchor_vel[a] = Point(rng.Gaussian(0, step), rng.Gaussian(0, step));
  }
  for (size_t i = 0; i < num_objects; ++i) {
    Trajectory traj(static_cast<ObjectId>(i));
    const Tick lifetime = rng.UniformInt(ticks / 2, ticks);
    const Tick start = rng.UniformInt(0, ticks - lifetime);
    const bool follows_anchor = rng.Chance(0.6);
    const size_t anchor = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_anchors) - 1));
    Point pos = follows_anchor
                    ? anchor_start[anchor] + Point(rng.Gaussian(0, step * 2),
                                                   rng.Gaussian(0, step * 2))
                    : Point(rng.Uniform(0, world), rng.Uniform(0, world));
    for (Tick t = 0; t < lifetime; ++t) {
      const bool boundary = t == 0 || t == lifetime - 1;
      if (boundary || rng.Chance(keep_prob)) {
        traj.Append(pos.x, pos.y, start + t);
      }
      const Point drift = follows_anchor ? anchor_vel[anchor] : Point(0, 0);
      pos = pos + drift +
            Point(rng.Gaussian(0, step), rng.Gaussian(0, step));
    }
    db.Add(std::move(traj));
  }
  return db;
}

}  // namespace convoy::testutil

#endif  // CONVOY_TESTS_TEST_UTIL_H_
