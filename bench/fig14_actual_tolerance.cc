// Figure 14 — effect of the actual tolerance: number of candidates after
// the filter step (a) and total discovery time (b), with the range-search
// bounds charged the per-segment *actual* tolerances versus the global
// delta. Paper shape: actual tolerances cut the candidate count
// substantially on every dataset; the time advantage is largest where
// refinement is expensive.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);

  PrintHeader(
      "Figure 14: effect of actual tolerance (CuTS*, fixed delta/lambda)");
  PrintRow({{"dataset", 12},
            {"cand(glob)", 12},
            {"cand(act)", 12},
            {"time(glob)", 12},
            {"time(act)", 12},
            {"runit(glob)", 13},
            {"runit(act)", 13}});
  PrintRule(87);

  for (const BenchDataset& ds : AllDatasets(opts)) {
    CutsFilterOptions global = FilterOptionsFor(ds);
    global.use_actual_tolerance = false;
    CutsFilterOptions actual = FilterOptionsFor(ds);
    actual.use_actual_tolerance = true;

    DiscoveryStats gstats;
    (void)RunVariant(ds, CutsVariant::kCutsStar, &gstats, global);
    DiscoveryStats astats;
    (void)RunVariant(ds, CutsVariant::kCutsStar, &astats, actual);

    PrintRow({{ds.data.name, 12},
              {std::to_string(gstats.num_candidates), 12},
              {std::to_string(astats.num_candidates), 12},
              {Fmt(gstats.total_seconds, 3), 12},
              {Fmt(astats.total_seconds, 3), 12},
              {Fmt(gstats.refinement_unit / 1e6, 2) + "M", 13},
              {Fmt(astats.refinement_unit / 1e6, 2) + "M", 13}});
  }
  std::cout << "\npaper shape: using actual tolerances never increases the "
               "candidate count\nor the refinement load, and usually reduces "
               "both considerably (Fig 14a);\nthe total-time gain (Fig 14b) "
               "is smaller on Truck/Taxi where the pruned\ncandidates were "
               "cheap to refine anyway.\n";
  return 0;
}
