// Table 3 — dataset characteristics, experiment parameters, and the number
// of convoys discovered. Paper values are printed alongside for comparison;
// absolute match is not expected (our datasets are synthetic analogues and
// default runs are time-scaled), but the *shape* — which dataset is big /
// dense / irregular, who finds many convoys — should correspond.

#include "bench/bench_common.h"

namespace {

struct PaperRow {
  const char* name;
  int n;
  long t;
  long avg_len;
  long points;
  int m;
  long k;
  double e;
  double delta;
  long lambda;
  int convoys;
};

// Table 3 of the paper, verbatim.
constexpr PaperRow kPaper[] = {
    {"Truck", 276, 10586, 224, 59894, 3, 180, 8, 5.9, 4, 91},
    {"Cattle", 13, 175636, 175636, 2283268, 2, 180, 300, 274.2, 36, 47},
    {"Car", 183, 8757, 451, 82590, 3, 180, 80, 63.4, 24, 15},
    {"Taxi", 500, 965, 82, 41144, 3, 180, 40, 31.5, 4, 4},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);

  PrintHeader("Table 3: settings for experiments (measured vs paper)");
  std::cout << (opts.full ? "[paper-scale time domains]\n"
                          : "[scaled time domains; run with --full for "
                            "paper scale]\n");

  const std::vector<BenchDataset> datasets = AllDatasets(opts);
  for (size_t i = 0; i < datasets.size(); ++i) {
    const BenchDataset& ds = datasets[i];
    const PaperRow& paper = kPaper[i];
    const DatabaseStats stats = ds.data.db.Stats();

    DiscoveryStats run;
    const auto convoys = RunVariant(ds, CutsVariant::kCutsStar, &run);

    std::cout << "\n--- " << ds.data.name << " (paper: " << paper.name
              << ") ---\n";
    PrintRow({{"", 30}, {"measured", 14}, {"paper", 14}});
    PrintRule(58);
    const auto row = [](const std::string& label, const std::string& got,
                        const std::string& want) {
      PrintRow({{label, 30}, {got, 14}, {want, 14}});
    };
    row("number of objects (N)", std::to_string(stats.num_objects),
        std::to_string(paper.n));
    row("time domain length (T)", std::to_string(stats.time_domain_length),
        std::to_string(paper.t));
    row("average trajectory length", Fmt(stats.avg_trajectory_length, 0),
        std::to_string(paper.avg_len));
    row("data size (points)", std::to_string(stats.total_points),
        std::to_string(paper.points));
    row("convoy objects (m)", std::to_string(ds.data.query.m),
        std::to_string(paper.m));
    row("convoy lifetime (k)", std::to_string(ds.data.query.k),
        std::to_string(paper.k));
    row("neighborhood range (e)", Fmt(ds.data.query.e, 1), Fmt(paper.e, 1));
    row("simplification tolerance (delta)", Fmt(ds.delta, 1),
        Fmt(paper.delta, 1));
    row("time partition length (lambda)", std::to_string(ds.lambda),
        std::to_string(paper.lambda));
    row("convoys discovered", std::to_string(convoys.size()),
        std::to_string(paper.convoys));
  }
  std::cout << "\nNote: delta/lambda are auto-derived with the Section 7.4 "
               "guidelines on the\nsynthetic data; convoy counts depend on "
               "planted groups plus chance meetings.\n";
  return 0;
}
