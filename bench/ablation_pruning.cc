// Ablation bench (DESIGN.md E10): isolates the design choices the paper
// motivates but does not measure separately —
//   * the Lemma 2 bounding-box pre-test in the TRAJ-DBSCAN neighbor check,
//   * projected (paper Algorithm 3) vs full-window (exact) refinement,
//   * time spent on CMC's virtual-point interpolation.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);
  const ScaleSet scales = ScalesFor(opts);

  const BenchDataset truck =
      PrepareDataset(TruckLikeConfig(scales.truck), opts.seed);
  const BenchDataset car =
      PrepareDataset(CarLikeConfig(scales.car), opts.seed + 2);

  PrintHeader("Ablation A: Lemma 2 bounding-box pruning (CuTS*)");
  PrintRow({{"dataset", 12},
            {"box prune", 12},
            {"pair tests", 13},
            {"pruned", 12},
            {"seg tests", 13},
            {"filter(s)", 12}});
  PrintRule(74);
  for (const BenchDataset* ds : {&truck, &car}) {
    for (const bool prune : {true, false}) {
      CutsFilterOptions options = FilterOptionsFor(*ds);
      options.use_box_pruning = prune;
      DiscoveryStats stats;
      (void)RunVariant(*ds, CutsVariant::kCutsStar, &stats, options);
      PrintRow({{ds->data.name, 12},
                {prune ? "on" : "off", 12},
                {std::to_string(stats.polyline_pair_tests), 13},
                {std::to_string(stats.polyline_box_pruned), 12},
                {std::to_string(stats.segment_distance_tests), 13},
                {Fmt(stats.filter_seconds, 3), 12}});
    }
  }

  PrintHeader("Ablation A2: all-pairs scan vs STR R-tree candidates (CuTS*)");
  PrintRow({{"dataset", 12},
            {"pairs mode", 12},
            {"pair tests", 13},
            {"filter(s)", 12}});
  PrintRule(49);
  for (const BenchDataset* ds : {&truck, &car}) {
    for (const bool rtree : {false, true}) {
      CutsFilterOptions options = FilterOptionsFor(*ds);
      options.use_rtree = rtree;
      DiscoveryStats stats;
      (void)RunVariant(*ds, CutsVariant::kCutsStar, &stats, options);
      PrintRow({{ds->data.name, 12},
                {rtree ? "rtree" : "all-pairs", 12},
                {std::to_string(stats.polyline_pair_tests), 13},
                {Fmt(stats.filter_seconds, 3), 12}});
    }
  }

  PrintHeader("Ablation B: projected vs full-window refinement (CuTS*)");
  PrintRow({{"dataset", 12},
            {"mode", 14},
            {"refine(s)", 12},
            {"total(s)", 12},
            {"convoys", 10}});
  PrintRule(60);
  for (const BenchDataset* ds : {&truck, &car}) {
    for (const RefineMode mode :
         {RefineMode::kProjected, RefineMode::kFullWindow}) {
      CutsFilterOptions options = FilterOptionsFor(*ds);
      options.refine_mode = mode;
      DiscoveryStats stats;
      const auto result = RunVariant(*ds, CutsVariant::kCutsStar, &stats,
                                     options);
      PrintRow({{ds->data.name, 12},
                {mode == RefineMode::kProjected ? "projected" : "full-window",
                 14},
                {Fmt(stats.refine_seconds, 3), 12},
                {Fmt(stats.total_seconds, 3), 12},
                {std::to_string(result.size()), 10}});
    }
  }

  PrintHeader("Ablation C: CMC cost vs sampling density (TaxiLike)");
  PrintRow({{"keep prob", 12}, {"points", 12}, {"CMC(s)", 12},
            {"CuTS*(s)", 12}, {"speedup", 10}});
  PrintRule(58);
  for (const double keep : {1.0, 0.5, 0.2, 0.11}) {
    ScenarioConfig config = TaxiLikeConfig(std::min(1.0, scales.taxi));
    config.sample_keep_prob = keep;
    const BenchDataset ds = PrepareDataset(config, opts.seed + 3);
    DiscoveryStats cmc_stats;
    (void)Cmc(ds.data.db, ds.data.query, {}, &cmc_stats);
    DiscoveryStats cuts_stats;
    (void)RunVariant(ds, CutsVariant::kCutsStar, &cuts_stats);
    PrintRow({{Fmt(keep, 2), 12},
              {std::to_string(ds.data.db.Stats().total_points), 12},
              {Fmt(cmc_stats.total_seconds, 3), 12},
              {Fmt(cuts_stats.total_seconds, 3), 12},
              {Fmt(cmc_stats.total_seconds /
                       std::max(1e-9, cuts_stats.total_seconds),
                   1) + "x",
               10}});
  }
  std::cout << "\nshape: box pruning removes most segment-distance work; "
               "projected\nrefinement is cheaper than full-window but may "
               "report redundant\nnon-maximal convoys; CMC's relative cost "
               "grows as sampling gets sparser\n(more virtual points to "
               "interpolate), which is the paper's Car/Taxi story.\n";
  return 0;
}
