#ifndef CONVOY_BENCH_BENCH_COMMON_H_
#define CONVOY_BENCH_BENCH_COMMON_H_

// Shared plumbing for the per-figure benchmark binaries: scenario
// construction at bench scale, command-line flags, and table formatting.
//
// Every binary accepts:
//   --full        paper-scale time domains (slower; default is scaled down)
//   --scale X     multiply the default time-domain scales by X
//   --seed N      dataset generation seed (default 42)
//   --threads N   worker threads for parallelizable phases (default 1;
//                 0 = all hardware threads; results are identical)

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "convoy/convoy.h"

namespace convoy::bench {

struct BenchOptions {
  bool full = false;
  double scale = 1.0;
  uint64_t seed = 42;
  size_t threads = 1;  ///< 0 = all hardware threads
  /// Where bench/scalability writes its machine-readable hot-path results
  /// (ignored by the other binaries). Empty disables the file.
  std::string json_path = "BENCH_hotpath.json";
};

inline BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opts.full = true;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      opts.scale = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "flags: --full | --scale X | --seed N | --threads N | "
                   "--json PATH\n";
      std::exit(0);
    }
  }
  return opts;
}

/// Default bench-scale factors per preset (DESIGN.md section 1); --full
/// raises all of them to 1.0 (the paper's Table 3 time domains).
struct ScaleSet {
  double truck = 0.25;
  double cattle = 0.125;
  double car = 0.25;
  double taxi = 1.0;
};

inline ScaleSet ScalesFor(const BenchOptions& opts) {
  ScaleSet s;
  if (opts.full) return ScaleSet{1.0, 1.0, 1.0, 1.0};
  s.truck *= opts.scale;
  s.cattle *= opts.scale;
  s.car *= opts.scale;
  s.taxi = std::min(1.0, s.taxi * opts.scale);
  return s;
}

/// A fully prepared benchmark dataset: generated data plus the internal
/// parameters (delta, lambda) derived once with the Section 7.4 guidelines
/// and then shared by every method, the way the paper's Table 3 fixes them.
struct BenchDataset {
  ScenarioData data;
  double delta = 0.0;
  Tick lambda = 0;
};

inline BenchDataset PrepareDataset(const ScenarioConfig& config,
                                   uint64_t seed) {
  BenchDataset ds;
  ds.data = GenerateScenario(config, seed);
  ds.delta = ComputeDelta(ds.data.db, ds.data.query.e);
  const auto simplified =
      SimplifyDatabase(ds.data.db, ds.delta, SimplifierKind::kDp);
  ds.lambda = ComputeLambda(ds.data.db, simplified, ds.data.query.k);
  return ds;
}

/// The four paper datasets in Table 3 order.
inline std::vector<BenchDataset> AllDatasets(const BenchOptions& opts) {
  const ScaleSet scales = ScalesFor(opts);
  std::vector<BenchDataset> out;
  out.push_back(PrepareDataset(TruckLikeConfig(scales.truck), opts.seed));
  out.push_back(PrepareDataset(CattleLikeConfig(scales.cattle), opts.seed + 1));
  out.push_back(PrepareDataset(CarLikeConfig(scales.car), opts.seed + 2));
  out.push_back(PrepareDataset(TaxiLikeConfig(scales.taxi), opts.seed + 3));
  return out;
}

inline CutsFilterOptions FilterOptionsFor(const BenchDataset& ds) {
  CutsFilterOptions options;
  options.delta = ds.delta;
  options.lambda = ds.lambda;
  return options;
}

/// FilterOptionsFor with a worker-thread count applied to both the filter
/// and refinement phases (results are identical at any thread count;
/// 0 = all hardware threads).
inline CutsFilterOptions FilterOptionsFor(const BenchDataset& ds,
                                          size_t threads) {
  CutsFilterOptions options = FilterOptionsFor(ds);
  options.num_threads = ResolveThreadCount(threads);
  options.refine_threads = options.num_threads;
  return options;
}

/// Runs one CuTS variant with the dataset's fixed internal parameters.
inline std::vector<Convoy> RunVariant(const BenchDataset& ds,
                                      CutsVariant variant,
                                      DiscoveryStats* stats,
                                      CutsFilterOptions options_override) {
  return Cuts(ds.data.db, ds.data.query, variant, options_override, stats);
}

inline std::vector<Convoy> RunVariant(const BenchDataset& ds,
                                      CutsVariant variant,
                                      DiscoveryStats* stats) {
  return RunVariant(ds, variant, stats, FilterOptionsFor(ds));
}

// ----------------------------------------------------------- formatting --

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline void PrintRule(size_t width = 78) {
  std::cout << std::string(width, '-') << "\n";
}

struct Col {
  std::string text;
  int width;
};

inline void PrintRow(const std::vector<Col>& cols) {
  for (const Col& c : cols) {
    std::cout << std::setw(c.width) << c.text;
  }
  std::cout << "\n";
}

inline std::string Fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace convoy::bench

#endif  // CONVOY_BENCH_BENCH_COMMON_H_
