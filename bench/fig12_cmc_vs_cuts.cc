// Figure 12 — query processing time of CMC versus the CuTS family on all
// four datasets. The paper reports the CuTS family 3.9x-33.1x faster than
// CMC, with CuTS* fastest overall; that ordering is the shape to reproduce.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);

  PrintHeader("Figure 12: comparisons of query processing time (seconds)");
  PrintRow({{"dataset", 12},
            {"CMC", 12},
            {"CuTS", 12},
            {"CuTS+", 12},
            {"CuTS*", 12},
            {"best speedup", 14}});
  PrintRule(74);

  for (const BenchDataset& ds : AllDatasets(opts)) {
    DiscoveryStats cmc_stats;
    const auto cmc_result = Cmc(ds.data.db, ds.data.query, {}, &cmc_stats);

    double times[3] = {0, 0, 0};
    size_t counts[3] = {0, 0, 0};
    const CutsVariant variants[] = {CutsVariant::kCuts, CutsVariant::kCutsPlus,
                                    CutsVariant::kCutsStar};
    for (int v = 0; v < 3; ++v) {
      DiscoveryStats stats;
      const auto result = RunVariant(ds, variants[v], &stats);
      times[v] = stats.total_seconds;
      counts[v] = result.size();
    }

    const double best = std::min({times[0], times[1], times[2]});
    PrintRow({{ds.data.name, 12},
              {Fmt(cmc_stats.total_seconds, 3), 12},
              {Fmt(times[0], 3), 12},
              {Fmt(times[1], 3), 12},
              {Fmt(times[2], 3), 12},
              {Fmt(cmc_stats.total_seconds / best, 1) + "x", 14}});
    std::cout << "    convoys: CMC=" << cmc_result.size()
              << " CuTS=" << counts[0] << " CuTS+=" << counts[1]
              << " CuTS*=" << counts[2] << "\n";
  }
  std::cout << "\npaper shape: CuTS family 3.9x (min) to 33.1x (max) faster "
               "than CMC;\nCuTS* the fastest overall; gap widest on Car and "
               "Taxi (missing samples\nforce CMC to interpolate virtual "
               "points every tick).\n";
  return 0;
}
