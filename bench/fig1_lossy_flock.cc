// Figure 1 as an experiment — the lossy-flock problem, quantified.
//
// The paper motivates convoys with a sketch: a disc-based flock query
// misses groups whose shape exceeds the disc, and no single disc size works
// for all group shapes. This bench sweeps the extent of a linear formation
// (cars along a road) and reports, for each extent, whether the convoy
// query and the flock query recover the full group.

#include "bench/bench_common.h"
#include "core/flock.h"

namespace {

// A moving line of `n` objects with consecutive spacing `gap`, alive for
// `ticks` ticks, plus a few far-away noise objects.
convoy::TrajectoryDatabase LinearFormation(size_t n, double gap, long ticks,
                                           uint64_t seed) {
  convoy::Rng rng(seed);
  convoy::TrajectoryDatabase db;
  for (size_t id = 0; id < n; ++id) {
    convoy::Trajectory traj(static_cast<convoy::ObjectId>(id));
    for (long t = 0; t < ticks; ++t) {
      traj.Append(static_cast<double>(t) * 3.0 +
                      rng.Gaussian(0.0, 0.01),
                  static_cast<double>(id) * gap + rng.Gaussian(0.0, 0.01),
                  t);
    }
    db.Add(std::move(traj));
  }
  for (size_t id = n; id < n + 4; ++id) {
    convoy::Trajectory traj(static_cast<convoy::ObjectId>(id));
    for (long t = 0; t < ticks; ++t) {
      traj.Append(static_cast<double>(t) * 3.0,
                  500.0 + 100.0 * static_cast<double>(id), t);
    }
    db.Add(std::move(traj));
  }
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  (void)ParseArgs(argc, argv);

  const size_t n = 6;
  const long ticks = 20;
  const double e = 1.5;  // chaining range == disc radius

  PrintHeader("Figure 1: the lossy-flock problem (6-object line, e = r = "
              "1.5)");
  PrintRow({{"gap", 8},
            {"extent", 10},
            {"convoy finds", 14},
            {"flock finds", 13},
            {"flock frags", 13}});
  PrintRule(58);

  for (const double gap : {0.4, 0.9, 1.4, 1.8}) {
    const TrajectoryDatabase db = LinearFormation(n, gap, ticks, 11);
    // Convoy query: density m = 3 (each line member has two neighbors plus
    // itself within e); the full group qualifies when some result convoy
    // contains all n members.
    const auto convoys = Cmc(db, ConvoyQuery{3, static_cast<Tick>(ticks), e});
    bool convoy_full = false;
    for (const Convoy& c : convoys) {
      convoy_full |= c.objects.size() >= n;
    }
    // Flock query: the full group must fit one disc.
    const auto flocks =
        FlockDiscovery(db, FlockQuery{n, static_cast<Tick>(ticks), e});
    size_t flock_max = 0;
    const auto frags = FlockDiscovery(
        db, FlockQuery{2, static_cast<Tick>(ticks), e});
    for (const Convoy& f : frags) {
      flock_max = std::max(flock_max, f.objects.size());
    }
    PrintRow({{Fmt(gap, 1), 8},
              {Fmt(gap * (n - 1), 1), 10},
              {convoy_full ? "full group" : "MISSED", 14},
              {flocks.empty() ? "MISSED" : "full group", 13},
              {std::to_string(flock_max) + "/6", 13}});
  }
  std::cout << "\nshape (paper Figure 1): once the formation extent exceeds "
               "the disc\ndiameter (2r = 3.0), the flock query cannot return "
               "the group at any\nplacement — only fragments — while the "
               "density-connected convoy query\nstill finds it as long as "
               "consecutive members chain within e (the last\nrow, gap > e, "
               "is beyond both models). No disc radius fixes this without\n"
               "also merging separate groups elsewhere.\n";
  return 0;
}
