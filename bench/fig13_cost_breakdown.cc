// Figure 13 — analysis of query processing cost: the simplification /
// filter / refinement breakdown for each CuTS variant on the Cattle and
// Taxi datasets. Paper shape: on Cattle (tiny N, enormous T) the
// simplification phase dominates, so the faster DP+ helps CuTS+ compete
// with CuTS*; on Taxi (large N, short T) clustering dominates and
// simplification is negligible.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);
  const ScaleSet scales = ScalesFor(opts);

  PrintHeader("Figure 13: analysis of query processing cost (seconds)");

  const BenchDataset cattle =
      PrepareDataset(CattleLikeConfig(scales.cattle), opts.seed + 1);
  const BenchDataset taxi =
      PrepareDataset(TaxiLikeConfig(scales.taxi), opts.seed + 3);

  for (const BenchDataset* ds : {&cattle, &taxi}) {
    std::cout << "\n( " << ds->data.name << " )\n";
    PrintRow({{"method", 10},
              {"simplify", 12},
              {"filter", 12},
              {"refine", 12},
              {"total", 12},
              {"simplify%", 12}});
    PrintRule(70);
    for (const auto variant : {CutsVariant::kCuts, CutsVariant::kCutsPlus,
                               CutsVariant::kCutsStar}) {
      DiscoveryStats stats;
      (void)RunVariant(*ds, variant, &stats);
      const double share =
          stats.total_seconds > 0
              ? 100.0 * stats.simplify_seconds / stats.total_seconds
              : 0.0;
      PrintRow({{ToString(variant), 10},
                {Fmt(stats.simplify_seconds, 4), 12},
                {Fmt(stats.filter_seconds, 4), 12},
                {Fmt(stats.refine_seconds, 4), 12},
                {Fmt(stats.total_seconds, 4), 12},
                {Fmt(share, 1) + "%", 12}});
    }
  }
  std::cout << "\npaper shape: simplification dominates on Cattle (few "
               "objects, per-second\nsampling, very long histories); "
               "clustering dominates on Taxi (500 objects,\nshort time "
               "domain); DP+ gives CuTS+ the cheapest simplification.\n";
  return 0;
}
