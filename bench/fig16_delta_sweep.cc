// Figure 16 — effect of the simplification tolerance delta on the Car and
// Taxi datasets: refinement unit (filter effectiveness) and total discovery
// time for each CuTS variant. Paper shape: CuTS* has the lowest refinement
// unit and the best time at every delta; CuTS+ filters better than CuTS;
// both effectiveness and efficiency degrade as delta grows.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);
  const ScaleSet scales = ScalesFor(opts);

  const BenchDataset car =
      PrepareDataset(CarLikeConfig(scales.car), opts.seed + 2);
  const BenchDataset taxi =
      PrepareDataset(TaxiLikeConfig(scales.taxi), opts.seed + 3);

  for (const BenchDataset* ds : {&car, &taxi}) {
    const double e = ds->data.query.e;
    // The paper sweeps delta = 10..220 with e = 80 (Car): from e/8 to ~3e.
    const std::vector<double> deltas = {e / 8, e / 2, e, 2 * e, 2.75 * e};

    PrintHeader("Figure 16 (" + ds->data.name +
                "): refinement unit (M) and elapsed time (s) vs delta");
    PrintRow({{"delta", 10},
              {"CuTS ru", 12},
              {"CuTS+ ru", 12},
              {"CuTS* ru", 12},
              {"CuTS t", 10},
              {"CuTS+ t", 10},
              {"CuTS* t", 10}});
    PrintRule(76);
    for (const double delta : deltas) {
      std::vector<std::string> units;
      std::vector<std::string> times;
      for (const auto variant : {CutsVariant::kCuts, CutsVariant::kCutsPlus,
                                 CutsVariant::kCutsStar}) {
        CutsFilterOptions options = FilterOptionsFor(*ds);
        options.delta = delta;
        DiscoveryStats stats;
        (void)RunVariant(*ds, variant, &stats, options);
        units.push_back(Fmt(stats.refinement_unit / 1e6, 3));
        times.push_back(Fmt(stats.total_seconds, 3));
      }
      PrintRow({{Fmt(delta, 1), 10},
                {units[0], 12},
                {units[1], 12},
                {units[2], 12},
                {times[0], 10},
                {times[1], 10},
                {times[2], 10}});
    }
  }
  std::cout << "\npaper shape: refinement unit grows with delta for every "
               "method (looser\nbounds -> fatter candidates); CuTS* lowest, "
               "then CuTS+, then CuTS. Total\ntime grows steadily on Car; "
               "on Taxi it stays nearly flat (uniformly\nspread taxis give "
               "the enlarged search range little extra to find).\n";
  return 0;
}
