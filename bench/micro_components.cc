// Component microbenchmarks (google-benchmark): the geometric primitives,
// index structures, clustering kernels, and simplification algorithms that
// the discovery pipeline is built from.

#include <benchmark/benchmark.h>

#include "convoy/convoy.h"
#include "tests/reference_impl.h"

namespace {

using namespace convoy;

Trajectory MakeWalk(uint64_t seed, size_t n) {
  Rng rng(seed);
  Trajectory traj(0);
  Point pos(0, 0);
  for (size_t i = 0; i < n; ++i) {
    traj.Append(pos.x, pos.y, static_cast<Tick>(i));
    pos = pos + Point(rng.Gaussian(0.3, 1.0), rng.Gaussian(0, 1.0));
  }
  return traj;
}

std::vector<Point> MakePoints(uint64_t seed, size_t n, double world) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(rng.Uniform(0, world), rng.Uniform(0, world));
  }
  return points;
}

// ------------------------------------------------------------ distances --

void BM_PointDistance(benchmark::State& state) {
  const Point a(1.5, 2.5);
  const Point b(100.25, -3.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(D(a, b));
  }
}
BENCHMARK(BM_PointDistance);

void BM_PointToSegment(benchmark::State& state) {
  const Point p(5, 7);
  const Segment s(Point(0, 0), Point(10, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DPL(p, s));
  }
}
BENCHMARK(BM_PointToSegment);

void BM_SegmentToSegment(benchmark::State& state) {
  const Segment a(Point(0, 0), Point(10, 3));
  const Segment b(Point(4, 9), Point(14, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DLL(a, b));
  }
}
BENCHMARK(BM_SegmentToSegment);

void BM_DStar(benchmark::State& state) {
  const TimedSegment a(TimedPoint(0, 0, 0), TimedPoint(10, 3, 8));
  const TimedSegment b(TimedPoint(4, 9, 2), TimedPoint(14, 5, 12));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DStar(a, b));
  }
}
BENCHMARK(BM_DStar);

// -------------------------------------------------------------- indexing --

void BM_GridIndexBuild(benchmark::State& state) {
  const auto points =
      MakePoints(1, static_cast<size_t>(state.range(0)), 1000.0);
  for (auto _ : state) {
    GridIndex index(points, 10.0);
    benchmark::DoNotOptimize(index.NumPoints());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridIndexBuild)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GridIndexQuery(benchmark::State& state) {
  const auto points =
      MakePoints(2, static_cast<size_t>(state.range(0)), 1000.0);
  const GridIndex index(points, 10.0);
  Rng rng(3);
  std::vector<size_t> out;
  for (auto _ : state) {
    const Point probe(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
    index.WithinRadiusInto(probe, 10.0, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridIndexQuery)->Arg(1000)->Arg(10000);

// --- hot-path shapes, old (reference_impl.h) vs new (flat CSR) -----------
// Three distributions bound the grid's behaviour: uniform scatter (the
// nominal regime), every point in one cell (bucket pile-up; the CSR scan
// degenerates to one interval), and exactly one point per cell (maximum
// cell count, minimum bucket size).

enum GridShape { kUniform = 0, kOneCell = 1, kDenseCells = 2 };

std::vector<Point> ShapePoints(GridShape shape, size_t n) {
  Rng rng(13);
  std::vector<Point> points;
  points.reserve(n);
  switch (shape) {
    case kUniform:
      for (size_t i = 0; i < n; ++i) {
        points.emplace_back(rng.Uniform(0, 300), rng.Uniform(0, 300));
      }
      break;
    case kOneCell:
      for (size_t i = 0; i < n; ++i) {
        points.emplace_back(rng.Uniform(0, 9.5), rng.Uniform(0, 9.5));
      }
      break;
    case kDenseCells: {
      const size_t side = static_cast<size_t>(std::sqrt(double(n))) + 1;
      for (size_t i = 0; i < n; ++i) {
        points.emplace_back(static_cast<double>(i % side) * 10.0 + 0.5,
                            static_cast<double>(i / side) * 10.0 + 0.5);
      }
      break;
    }
  }
  return points;
}

void BM_GridBuildReference(benchmark::State& state) {
  const auto points =
      ShapePoints(static_cast<GridShape>(state.range(0)), 1000);
  for (auto _ : state) {
    reference::ReferenceGridIndex index(points, 10.0);
    benchmark::DoNotOptimize(index.NumPoints());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_GridBuildReference)->Arg(kUniform)->Arg(kOneCell)
    ->Arg(kDenseCells);

void BM_GridBuildCsr(benchmark::State& state) {
  const auto points =
      ShapePoints(static_cast<GridShape>(state.range(0)), 1000);
  GridIndex index;  // arena: Assign reuses capacity, as the hot loops do
  for (auto _ : state) {
    index.Assign(points, 10.0);
    benchmark::DoNotOptimize(index.NumPoints());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_GridBuildCsr)->Arg(kUniform)->Arg(kOneCell)->Arg(kDenseCells);

void BM_GridQueryReference(benchmark::State& state) {
  const auto points =
      ShapePoints(static_cast<GridShape>(state.range(0)), 1000);
  const reference::ReferenceGridIndex index(points, 10.0);
  std::vector<size_t> out;
  size_t i = 0;
  for (auto _ : state) {
    index.WithinRadiusInto(points[i], 10.0, &out);
    benchmark::DoNotOptimize(out.size());
    i = (i + 1) % points.size();
  }
}
BENCHMARK(BM_GridQueryReference)->Arg(kUniform)->Arg(kOneCell)
    ->Arg(kDenseCells);

void BM_GridQueryCsr(benchmark::State& state) {
  // The DBSCAN query shape: the probe is an indexed point, answered from
  // the precomputed 3x3 block intervals.
  const auto points =
      ShapePoints(static_cast<GridShape>(state.range(0)), 1000);
  const GridIndex index(points, 10.0);
  std::vector<size_t> out;
  size_t i = 0;
  for (auto _ : state) {
    index.NeighborsOfInto(i, points[i], 10.0, &out);
    benchmark::DoNotOptimize(out.size());
    i = (i + 1) % points.size();
  }
}
BENCHMARK(BM_GridQueryCsr)->Arg(kUniform)->Arg(kOneCell)->Arg(kDenseCells);

// --------------------------------------------------------- candidate step --

std::vector<std::vector<ObjectId>> AdvanceClusters(Tick t, size_t universe,
                                                   size_t cluster_size) {
  // Disjoint clusters drifting one member per step — a convoy-rich tick.
  std::vector<std::vector<ObjectId>> clusters;
  std::vector<bool> seen(universe, false);
  for (size_t c = 0; c * cluster_size < universe; ++c) {
    std::vector<ObjectId> members;
    for (size_t j = 0; j < cluster_size; ++j) {
      const ObjectId id = static_cast<ObjectId>(
          (c * cluster_size + j + (j == 0 ? t : 0)) % universe);
      if (!seen[id]) {
        seen[id] = true;
        members.push_back(id);
      }
    }
    std::sort(members.begin(), members.end());
    clusters.push_back(std::move(members));
  }
  return clusters;
}

template <typename Tracker>
void RunAdvanceBench(benchmark::State& state) {
  const size_t universe = static_cast<size_t>(state.range(0));
  // Pre-generate the stream: only Advance may sit inside the timed loop,
  // or the synthetic-cluster generator floors the old-vs-new comparison.
  std::vector<std::vector<std::vector<ObjectId>>> step_clusters;
  for (Tick t = 0; t < 30; ++t) {
    step_clusters.push_back(AdvanceClusters(t, universe, 20));
  }
  for (auto _ : state) {
    Tracker tracker(3, 10);
    std::vector<Candidate> done;
    for (Tick t = 0; t < 30; ++t) {
      tracker.Advance(step_clusters[static_cast<size_t>(t)], t, t, 1, &done);
    }
    benchmark::DoNotOptimize(done.size());
  }
  state.SetItemsProcessed(state.iterations() * 30);
}

void BM_CandidateAdvanceReference(benchmark::State& state) {
  RunAdvanceBench<reference::ReferenceCandidateTracker>(state);
}
BENCHMARK(BM_CandidateAdvanceReference)->Arg(200)->Arg(1000);

void BM_CandidateAdvanceLabel(benchmark::State& state) {
  RunAdvanceBench<CandidateTracker>(state);
}
BENCHMARK(BM_CandidateAdvanceLabel)->Arg(200)->Arg(1000);

// ------------------------------------------------------------ clustering --

void BM_Dbscan(benchmark::State& state) {
  const auto points =
      MakePoints(4, static_cast<size_t>(state.range(0)), 300.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dbscan(points, 10.0, 3).clusters.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Dbscan)->Arg(50)->Arg(200)->Arg(1000);

void BM_PolylineNeighborTest(benchmark::State& state) {
  Rng rng(5);
  const Trajectory ta = MakeWalk(6, 200);
  const Trajectory tb = MakeWalk(7, 200);
  const SimplifiedTrajectory sa = DpStar(ta, 1.0);
  const SimplifiedTrajectory sb = DpStar(tb, 1.0);
  PartitionPolyline a;
  a.object = 0;
  for (size_t i = 0; i < sa.NumSegments(); ++i) {
    a.segments.push_back(sa.GetSegment(i));
    a.tolerances.push_back(sa.SegmentTolerance(i));
  }
  a.FinalizeBounds();
  PartitionPolyline b;
  b.object = 1;
  for (size_t i = 0; i < sb.NumSegments(); ++i) {
    b.segments.push_back(sb.GetSegment(i));
    b.tolerances.push_back(sb.SegmentTolerance(i));
  }
  b.FinalizeBounds();
  PolylineDbscanOptions opts;
  opts.eps = 4.0;
  opts.min_pts = 2;
  opts.distance = SegmentDistanceKind::kDStar;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolylinesAreNeighbors(a, b, opts));
  }
}
BENCHMARK(BM_PolylineNeighborTest);

// -------------------------------------------------------- simplification --

void BM_DouglasPeucker(benchmark::State& state) {
  const Trajectory traj = MakeWalk(8, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DouglasPeucker(traj, 2.0).NumVertices());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DouglasPeucker)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DpPlus(benchmark::State& state) {
  const Trajectory traj = MakeWalk(9, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DpPlus(traj, 2.0).NumVertices());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DpPlus)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DpStar(benchmark::State& state) {
  const Trajectory traj = MakeWalk(10, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DpStar(traj, 2.0).NumVertices());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DpStar)->Arg(100)->Arg(1000)->Arg(10000);

// ----------------------------------------------------------- trajectory --

void BM_InterpolateAt(benchmark::State& state) {
  // Irregularly sampled trajectory: the virtual-point cost CMC pays.
  Rng rng(11);
  Trajectory traj(0);
  Point pos(0, 0);
  for (Tick t = 0; t < 10000; ++t) {
    if (t == 0 || t == 9999 || rng.Chance(0.2)) traj.Append(pos.x, pos.y, t);
    pos = pos + Point(rng.Gaussian(0.3, 1.0), rng.Gaussian(0, 1.0));
  }
  Tick t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(InterpolateAt(traj, t));
    t = (t + 37) % 10000;
  }
}
BENCHMARK(BM_InterpolateAt);

void BM_SegmentCovering(benchmark::State& state) {
  const Trajectory traj = MakeWalk(12, 5000);
  const SimplifiedTrajectory simp = DouglasPeucker(traj, 2.0);
  Tick t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simp.SegmentCovering(t));
    t = (t + 29) % 5000;
  }
}
BENCHMARK(BM_SegmentCovering);

}  // namespace

BENCHMARK_MAIN();
