// Scalability bench (beyond the paper's figures): how the algorithms scale
// with population size N and time-domain length T on a controlled workload,
// and what parallel refinement buys. The paper's evaluation fixes its four
// datasets; a library release needs the growth curves.
//
// Also emits BENCH_hotpath.json (override with --json PATH): the
// machine-readable hot-path numbers — per-snapshot clustering and the
// candidate step, reference vs optimized shapes, the CuTS* filter phase in
// isolation (reference merge scan vs SoA-scalar vs SoA+SIMD kernels), plus
// end-to-end CMC and CuTS* at N = 1000 (untraced and with a full
// TraceSession attached, so tracing overhead is tracked across PRs) — and
// the per-phase wall-clock breakdown of a traced CuTS* engine run from the
// obs/ span aggregates. Schema:
//   { "schema": "convoy-bench-hotpath-v3",
//     "results": [ {"bench": str, "n": int, "threads": int,
//                   "ns_per_op": float}, ... ],
//     "phases": [ {"name": str, "count": int, "total_ms": float}, ... ] }

#include <fstream>
#include <thread>

#include "bench/bench_common.h"
#include "tests/reference_impl.h"
#include "traj/interpolate.h"

namespace {

convoy::ScenarioConfig BaseConfig(size_t n, convoy::Tick t) {
  convoy::ScenarioConfig c = convoy::CarLikeConfig(1.0);
  c.num_objects = n;
  c.time_domain = t;
  c.lifetime_fraction = std::min(1.0, 500.0 / static_cast<double>(t));
  c.num_groups = std::max<size_t>(2, n / 40);
  c.query.k = 120;
  c.group_duration_min = 150;
  c.group_duration_max = 400;
  return c;
}

/// Accumulates (bench, n, threads, ns/op) rows and writes the JSON file.
struct HotpathReport {
  struct Row {
    std::string bench;
    size_t n;
    size_t threads;
    double ns_per_op;
  };
  std::vector<Row> rows;
  /// Span aggregates of the traced CuTS* engine run (wall-clock; not a
  /// cross-PR regression signal, a where-does-the-time-go map).
  std::vector<convoy::QueryMetrics::SpanAggregate> phases;

  void Add(const std::string& bench, size_t n, size_t threads,
           double ns_per_op) {
    rows.push_back(Row{bench, n, threads, ns_per_op});
  }

  double NsOf(const std::string& bench) const {
    for (const Row& r : rows) {
      if (r.bench == bench) return r.ns_per_op;
    }
    return 0.0;
  }

  bool Write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"schema\": \"convoy-bench-hotpath-v3\",\n  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      out << "    {\"bench\": \"" << rows[i].bench << "\", \"n\": "
          << rows[i].n << ", \"threads\": " << rows[i].threads
          << ", \"ns_per_op\": " << rows[i].ns_per_op << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"phases\": [\n";
    for (size_t i = 0; i < phases.size(); ++i) {
      out << "    {\"name\": \"" << phases[i].name << "\", \"count\": "
          << phases[i].count << ", \"total_ms\": " << phases[i].total_ms
          << "}" << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }
};

/// The pre-PR-5 per-snapshot clustering shape, mirrored from the retained
/// reference pieces: hash-grid DBSCAN with per-call allocations, clusters
/// out as sorted object-id lists (exactly what ClusterSnapshot produces).
std::vector<std::vector<convoy::ObjectId>> ReferenceClusterSnapshot(
    const std::vector<convoy::Point>& points,
    const std::vector<convoy::ObjectId>& ids, const convoy::ConvoyQuery& q) {
  using namespace convoy;
  if (points.size() < q.m) return {};
  const Clustering clustering =
      reference::ReferenceDbscan(points, q.e, q.m);
  std::vector<std::vector<ObjectId>> out;
  out.reserve(clustering.clusters.size());
  for (const std::vector<size_t>& cluster : clustering.clusters) {
    std::vector<ObjectId> members;
    members.reserve(cluster.size());
    for (const size_t idx : cluster) members.push_back(ids[idx]);
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  return out;
}

/// End-to-end CMC built on the reference pieces only (hash grid, deque
/// DBSCAN, ordered-map candidate step) — the pre-PR-5 execution shape.
std::vector<convoy::Convoy> ReferenceCmcRun(const convoy::TrajectoryDatabase& db,
                                            const convoy::ConvoyQuery& query) {
  using namespace convoy;
  reference::ReferenceCandidateTracker tracker(query.m, query.k);
  std::vector<Candidate> completed;
  std::vector<Point> snapshot;
  std::vector<ObjectId> ids;
  for (Tick t = db.BeginTick(); t <= db.EndTick(); ++t) {
    snapshot.clear();
    ids.clear();
    for (const Trajectory& traj : db.trajectories()) {
      const auto pos = InterpolateAt(traj, t);
      if (!pos.has_value()) continue;
      snapshot.push_back(*pos);
      ids.push_back(traj.id());
    }
    tracker.Advance(ReferenceClusterSnapshot(snapshot, ids, query), t, t, 1,
                    &completed);
  }
  tracker.Flush(&completed);
  return FinalizeCmcResult(completed, CmcOptions{});
}

void RunHotpathSection(const convoy::bench::BenchOptions& opts) {
  using namespace convoy;
  using namespace convoy::bench;
  HotpathReport report;
  const int mult = opts.full ? 3 : 1;

  // ---- per-snapshot clustering, N = 1000 --------------------------------
  {
    Rng rng(7);
    std::vector<Point> points;
    std::vector<ObjectId> ids;
    for (size_t i = 0; i < 1000; ++i) {
      points.emplace_back(rng.Uniform(0, 300), rng.Uniform(0, 300));
      ids.push_back(static_cast<ObjectId>(i));
    }
    ConvoyQuery q;
    q.m = 3;
    q.k = 2;
    q.e = 10.0;

    size_t sink = 0;
    const int ref_iters = 100 * mult;
    Stopwatch ref_watch;
    for (int i = 0; i < ref_iters; ++i) {
      sink += ReferenceClusterSnapshot(points, ids, q).size();
    }
    report.Add("snapshot_cluster_reference", 1000, 1,
               ref_watch.ElapsedSeconds() * 1e9 / ref_iters);

    DbscanScratch scratch;
    const int opt_iters = 200 * mult;
    Stopwatch opt_watch;
    for (int i = 0; i < opt_iters; ++i) {
      sink += ClusterSnapshot(points, ids, q, nullptr, &scratch).size();
    }
    report.Add("snapshot_cluster_csr_arena", 1000, 1,
               opt_watch.ElapsedSeconds() * 1e9 / opt_iters);
    if (sink == 0) std::cout << "";  // keep the loops observable

    // ---- grid build alone, same snapshot --------------------------------
    const int grid_iters = 400 * mult;
    Stopwatch ref_grid;
    for (int i = 0; i < grid_iters; ++i) {
      reference::ReferenceGridIndex g(points, q.e);
      sink += g.NumPoints();
    }
    report.Add("grid_build_reference", 1000, 1,
               ref_grid.ElapsedSeconds() * 1e9 / grid_iters);
    Stopwatch opt_grid;
    for (int i = 0; i < grid_iters; ++i) {
      scratch.grid.Assign(points, q.e);
      sink += scratch.grid.NumPoints();
    }
    report.Add("grid_build_csr_arena", 1000, 1,
               opt_grid.ElapsedSeconds() * 1e9 / grid_iters);
  }

  // ---- candidate step, synthetic 1000-object stream ---------------------
  {
    // 50 disjoint clusters of 20 objects, drifting one object per step —
    // the live set stays saturated, the shape CMC's tracker sees on a
    // large convoy-rich tick.
    const size_t universe = 1000;
    const auto clusters_at = [&](Tick t) {
      std::vector<std::vector<ObjectId>> clusters;
      for (size_t c = 0; c < 50; ++c) {
        std::vector<ObjectId> members;
        for (size_t j = 0; j < 20; ++j) {
          members.push_back(static_cast<ObjectId>(
              (c * 20 + j + (j == 0 ? t : 0)) % universe));
        }
        std::sort(members.begin(), members.end());
        members.erase(std::unique(members.begin(), members.end()),
                      members.end());
        clusters.push_back(std::move(members));
      }
      return clusters;
    };
    // The drifted member can collide with another cluster's range; keep
    // the step's clusters disjoint the way DBSCAN guarantees.
    const auto disjoint_clusters_at = [&](Tick t) {
      auto clusters = clusters_at(t);
      std::vector<bool> seen(universe, false);
      for (auto& cluster : clusters) {
        std::vector<ObjectId> kept;
        for (ObjectId id : cluster) {
          if (!seen[id]) {
            seen[id] = true;
            kept.push_back(id);
          }
        }
        cluster = std::move(kept);
      }
      return clusters;
    };

    // Generate every step's clusters up front: the timed region must
    // contain Advance and nothing else, or the generator cost floors the
    // cross-PR metric and dampens real tracker regressions.
    const Tick steps = 60;
    std::vector<std::vector<std::vector<ObjectId>>> step_clusters;
    for (Tick t = 0; t < steps; ++t) {
      step_clusters.push_back(disjoint_clusters_at(t));
    }
    const int adv_iters = 3 * mult;
    Stopwatch ref_watch;
    for (int i = 0; i < adv_iters; ++i) {
      reference::ReferenceCandidateTracker tracker(3, 10);
      std::vector<Candidate> done;
      for (Tick t = 0; t < steps; ++t) {
        tracker.Advance(step_clusters[static_cast<size_t>(t)], t, t, 1,
                        &done);
      }
    }
    report.Add("candidate_advance_reference", 1000, 1,
               ref_watch.ElapsedSeconds() * 1e9 /
                   (adv_iters * static_cast<int>(steps)));
    Stopwatch opt_watch;
    for (int i = 0; i < adv_iters; ++i) {
      CandidateTracker tracker(3, 10);
      std::vector<Candidate> done;
      for (Tick t = 0; t < steps; ++t) {
        tracker.Advance(step_clusters[static_cast<size_t>(t)], t, t, 1,
                        &done);
      }
    }
    report.Add("candidate_advance_label", 1000, 1,
               opt_watch.ElapsedSeconds() * 1e9 /
                   (adv_iters * static_cast<int>(steps)));
  }

  // ---- end-to-end CMC, N = 1000 -----------------------------------------
  {
    ScenarioConfig c = CarLikeConfig(1.0);
    c.num_objects = 1000;
    c.time_domain = 300;
    c.lifetime_fraction = 1.0;
    c.num_groups = 25;
    c.query.k = 60;
    c.group_duration_min = 80;
    c.group_duration_max = 200;
    const ScenarioData data = GenerateScenario(c, opts.seed);

    const int iters = 2 * mult;
    size_t ref_convoys = 0;
    Stopwatch ref_watch;
    for (int i = 0; i < iters; ++i) {
      ref_convoys = ReferenceCmcRun(data.db, data.query).size();
    }
    report.Add("cmc_e2e_reference", 1000, 1,
               ref_watch.ElapsedSeconds() * 1e9 / iters);

    size_t opt_convoys = 0;
    Stopwatch opt_watch;
    for (int i = 0; i < iters; ++i) {
      opt_convoys = Cmc(data.db, data.query).size();
    }
    report.Add("cmc_e2e_optimized", 1000, 1,
               opt_watch.ElapsedSeconds() * 1e9 / iters);
    if (ref_convoys != opt_convoys) {
      std::cout << "WARNING: reference and optimized CMC disagree ("
                << ref_convoys << " vs " << opt_convoys << " convoys)\n";
    }

    // CuTS* end-to-end on the same dataset. No in-binary reference pair —
    // a faithful pre-rewrite CuTS would mean retaining the whole filter —
    // so this row is the absolute number the cross-PR trajectory tracks
    // (the filter's candidate step and the refinement's CmcRange both sit
    // on the rebuilt hot path).
    Stopwatch cuts_watch;
    size_t cuts_convoys = 0;
    for (int i = 0; i < iters; ++i) {
      cuts_convoys = Cuts(data.db, data.query).size();
    }
    report.Add("cuts_star_e2e_optimized", 1000, 1,
               cuts_watch.ElapsedSeconds() * 1e9 / iters);
    if (cuts_convoys == 0 && opt_convoys != 0) {
      std::cout << "WARNING: CuTS* found no convoys where CMC did\n";
    }

    // ---- CuTS* filter phase alone: reference vs SoA vs SIMD -------------
    // Isolates the filter rewrite. The reference row replays the
    // pre-rewrite shape (vector-of-segments polylines + PolylineDbscan's
    // merge scan, rebuilt per partition); the soa row runs the rewritten
    // filter with the kernels forced scalar (SoA storage + arena scratch,
    // no vectorization); the simd row lifts the force. All three produce
    // the same candidate set.
    {
      CutsFilterOptions fopts = MakeFilterOptions(CutsVariant::kCutsStar);
      fopts.num_threads = 1;
      const double delta = ComputeDelta(data.db, data.query.e);
      const std::vector<SimplifiedTrajectory> simplified =
          SimplifyDatabase(data.db, delta, fopts.simplifier, 1);
      const ConvoyQuery& q = data.query;
      const Tick lambda =
          std::max<Tick>(ComputeLambda(data.db, simplified, q.k), 1);
      fopts.delta = delta;
      fopts.lambda = lambda;

      const auto reference_filter = [&]() {
        CandidateTracker tracker(q.m, q.k);
        std::vector<Candidate> candidates;
        PolylineDbscanOptions copts;
        copts.eps = q.e;
        copts.min_pts = q.m;
        copts.distance = fopts.distance;
        copts.use_box_pruning = fopts.use_box_pruning;
        copts.use_rtree = fopts.use_rtree;
        for (Tick ps = data.db.BeginTick(); ps <= data.db.EndTick();
             ps += lambda) {
          const Tick pe = std::min<Tick>(ps + lambda - 1, data.db.EndTick());
          const std::vector<PartitionPolyline> polylines =
              BuildPartitionPolylines(simplified, ps, pe,
                                      fopts.use_actual_tolerance, delta);
          std::vector<std::vector<ObjectId>> clusters;
          if (polylines.size() >= q.m) {
            const Clustering clustering = PolylineDbscan(polylines, copts);
            for (const std::vector<size_t>& cluster : clustering.clusters) {
              std::vector<ObjectId> ids;
              ids.reserve(cluster.size());
              for (const size_t idx : cluster) {
                ids.push_back(polylines[idx].object);
              }
              std::sort(ids.begin(), ids.end());
              clusters.push_back(std::move(ids));
            }
          }
          tracker.Advance(clusters, ps, pe, lambda, &candidates);
        }
        tracker.Flush(&candidates);
        return candidates.size();
      };
      const auto rewritten_filter = [&]() {
        return CutsFilterPresimplified(data.db, q, fopts, simplified, delta,
                                       nullptr)
            .candidates.size();
      };

      const int filter_iters = 5 * mult;
      size_t ref_cands = 0;
      Stopwatch fref;
      for (int i = 0; i < filter_iters; ++i) ref_cands = reference_filter();
      report.Add("cuts_filter_reference", 1000, 1,
                 fref.ElapsedSeconds() * 1e9 / filter_iters);

      simd::ForceScalar(true);
      size_t soa_cands = 0;
      Stopwatch fsoa;
      for (int i = 0; i < filter_iters; ++i) soa_cands = rewritten_filter();
      report.Add("cuts_filter_soa", 1000, 1,
                 fsoa.ElapsedSeconds() * 1e9 / filter_iters);
      simd::ForceScalar(false);

      size_t simd_cands = 0;
      Stopwatch fsimd;
      for (int i = 0; i < filter_iters; ++i) simd_cands = rewritten_filter();
      report.Add("cuts_filter_simd", 1000, 1,
                 fsimd.ElapsedSeconds() * 1e9 / filter_iters);

      if (ref_cands != soa_cands || soa_cands != simd_cands) {
        std::cout << "WARNING: filter paths disagree on candidates ("
                  << ref_cands << " ref vs " << soa_cands << " soa vs "
                  << simd_cands << " simd)\n";
      }
    }

    // ---- tracing overhead + per-phase breakdown ------------------------
    // Same CMC workload with a full TraceSession attached: the delta vs
    // cmc_e2e_optimized is the all-in instrumentation cost (acceptance:
    // within a few percent — counters fold once per tick, never per
    // point). One session spans all iterations; span aggregates only grow.
    {
      TraceSession cmc_trace;
      ExecHooks traced_hooks;
      traced_hooks.trace = &cmc_trace;
      size_t traced_convoys = 0;
      Stopwatch traced_watch;
      for (int i = 0; i < iters; ++i) {
        traced_convoys =
            Cmc(data.db, data.query, {}, nullptr, &traced_hooks).size();
      }
      report.Add("cmc_e2e_traced", 1000, 1,
                 traced_watch.ElapsedSeconds() * 1e9 / iters);
      if (traced_convoys != opt_convoys) {
        std::cout << "WARNING: traced and untraced CMC disagree ("
                  << traced_convoys << " vs " << opt_convoys
                  << " convoys)\n";
      }
    }
    // A traced CuTS* run through the engine covers every instrumented
    // phase (prepare, simplify, filter, refine, finalize) — the span
    // aggregates become the "phases" section of the JSON report.
    {
      ConvoyEngine engine(data.db);
      TraceSession trace;
      const auto plan = engine.Prepare(data.query, AlgorithmChoice::kCutsStar,
                                       {}, {}, &trace);
      ExecHooks hooks;
      hooks.trace = &trace;
      const auto traced = engine.Execute(plan.value(), hooks);
      report.phases = traced.value().metrics().spans;
    }
  }

  PrintHeader("Hot path: reference vs optimized (ns/op)");
  PrintRow({{"bench", 30}, {"reference", 14}, {"optimized", 14},
            {"speedup", 9}});
  PrintRule(67);
  const auto print_pair = [&](const std::string& label,
                              const std::string& ref_key,
                              const std::string& opt_key) {
    const double ref = report.NsOf(ref_key);
    const double opt = report.NsOf(opt_key);
    PrintRow({{label, 30},
              {Fmt(ref, 0), 14},
              {Fmt(opt, 0), 14},
              {Fmt(ref / std::max(1.0, opt), 2) + "x", 9}});
  };
  print_pair("snapshot cluster (N=1000)", "snapshot_cluster_reference",
             "snapshot_cluster_csr_arena");
  print_pair("grid build (N=1000)", "grid_build_reference",
             "grid_build_csr_arena");
  print_pair("candidate advance (1k obj)", "candidate_advance_reference",
             "candidate_advance_label");
  print_pair("CMC end-to-end (N=1000)", "cmc_e2e_reference",
             "cmc_e2e_optimized");
  print_pair("CuTS* filter: SoA+arena", "cuts_filter_reference",
             "cuts_filter_soa");
  print_pair("CuTS* filter: SoA+SIMD", "cuts_filter_reference",
             "cuts_filter_simd");
  std::cout << "\nactive distance-kernel ISA: " << simd::ActiveKernelIsa()
            << " (CuTS* e2e at N=1000: "
            << Fmt(report.NsOf("cuts_star_e2e_optimized") / 1e6, 1)
            << " ms)\n";

  const double untraced = report.NsOf("cmc_e2e_optimized");
  const double traced = report.NsOf("cmc_e2e_traced");
  std::cout << "\ntracing overhead (CMC e2e, N=1000, full TraceSession): "
            << Fmt((traced / std::max(1.0, untraced) - 1.0) * 100.0, 1)
            << "%\n";

  PrintHeader("Per-phase breakdown (traced CuTS* engine run, N = 1000)");
  PrintRow({{"phase", 24}, {"count", 10}, {"total ms", 12}});
  PrintRule(46);
  for (const auto& phase : report.phases) {
    PrintRow({{phase.name, 24}, {std::to_string(phase.count), 10},
              {Fmt(phase.total_ms, 2), 12}});
  }

  if (!opts.json_path.empty()) {
    if (report.Write(opts.json_path)) {
      std::cout << "\nwrote " << opts.json_path << " ("
                << report.rows.size() << " results)\n";
    } else {
      std::cout << "\nWARNING: could not write " << opts.json_path << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);
  const double mult = opts.full ? 2.0 : 1.0;

  PrintHeader("Scalability in N (T = 1500, seconds)");
  PrintRow({{"N", 8}, {"CMC", 12}, {"CuTS*", 12}, {"speedup", 10},
            {"convoys", 10}});
  PrintRule(52);
  for (const size_t n :
       {size_t(64), size_t(128), size_t(256),
        static_cast<size_t>(512 * mult)}) {
    const BenchDataset ds = PrepareDataset(
        BaseConfig(n, static_cast<Tick>(1500)), opts.seed + n);
    DiscoveryStats cmc_stats;
    const auto cmc = Cmc(ds.data.db, ds.data.query, {}, &cmc_stats);
    DiscoveryStats cuts_stats;
    const auto cuts = RunVariant(ds, CutsVariant::kCutsStar, &cuts_stats);
    PrintRow({{std::to_string(n), 8},
              {Fmt(cmc_stats.total_seconds, 3), 12},
              {Fmt(cuts_stats.total_seconds, 3), 12},
              {Fmt(cmc_stats.total_seconds /
                       std::max(1e-9, cuts_stats.total_seconds), 1) + "x",
               10},
              {std::to_string(cuts.size()), 10}});
  }

  PrintHeader("Scalability in T (N = 128, seconds)");
  PrintRow({{"T", 8}, {"CMC", 12}, {"CuTS*", 12}, {"speedup", 10}});
  PrintRule(42);
  for (const Tick t :
       {Tick{1000}, Tick{2000}, Tick{4000},
        static_cast<Tick>(8000 * mult)}) {
    const BenchDataset ds = PrepareDataset(
        BaseConfig(128, t), opts.seed + static_cast<uint64_t>(t));
    DiscoveryStats cmc_stats;
    (void)Cmc(ds.data.db, ds.data.query, {}, &cmc_stats);
    DiscoveryStats cuts_stats;
    (void)RunVariant(ds, CutsVariant::kCutsStar, &cuts_stats);
    PrintRow({{std::to_string(t), 8},
              {Fmt(cmc_stats.total_seconds, 3), 12},
              {Fmt(cuts_stats.total_seconds, 3), 12},
              {Fmt(cmc_stats.total_seconds /
                       std::max(1e-9, cuts_stats.total_seconds), 1) + "x",
               10}});
  }

  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  PrintHeader("Thread sweep (default scenario, N = 128, T = 1200; " +
              std::to_string(hw) + " hardware thread(s))");
  PrintRow({{"threads", 10}, {"CMC(s)", 10}, {"speedup", 9}, {"CuTS(s)", 10},
            {"speedup", 9}, {"refine(s)", 11}, {"convoys", 9}});
  PrintRule(68);
  const BenchDataset ds =
      PrepareDataset(BaseConfig(128, 1200), opts.seed + 77);
  // --threads N narrows the sweep to {1, N} (the CI 2x-speedup check);
  // the default sweeps the ladder the ROADMAP tracks across PRs.
  std::vector<size_t> sweep = {1, 2, 4, 8};
  if (opts.threads > 1) sweep = {size_t(1), opts.threads};
  double cmc_serial = 0.0;
  double cuts_serial = 0.0;
  for (const size_t threads : sweep) {
    DiscoveryStats cmc_stats;
    (void)ParallelCmc(ds.data.db, ds.data.query, {}, &cmc_stats, threads);
    const CutsFilterOptions options = FilterOptionsFor(ds, threads);
    DiscoveryStats stats;
    const auto result = RunVariant(ds, CutsVariant::kCuts, &stats, options);
    if (threads == 1) {
      cmc_serial = cmc_stats.total_seconds;
      cuts_serial = stats.total_seconds;
    }
    PrintRow({{std::to_string(threads), 10},
              {Fmt(cmc_stats.total_seconds, 3), 10},
              {Fmt(cmc_serial / std::max(1e-9, cmc_stats.total_seconds), 2) +
                   "x", 9},
              {Fmt(stats.total_seconds, 3), 10},
              {Fmt(cuts_serial / std::max(1e-9, stats.total_seconds), 2) +
                   "x", 9},
              {Fmt(stats.refine_seconds, 3), 11},
              {std::to_string(result.size()), 9}});
  }
  // ------------------------------------------------------------------------
  // Planner overhead: the v2 Prepare+Execute path vs. the legacy Discover
  // shim on the same engine and seeded database, simplification cache warm
  // for both, so the difference is pure planner/executor machinery. Tracked
  // across PRs to keep the shim path effectively free.
  PrintHeader("Planner overhead (cache warm, ms/query, " +
              std::string("N = 96, T = 800)"));
  const BenchDataset pds = PrepareDataset(BaseConfig(96, 800), opts.seed + 123);
  const ConvoyEngine engine(pds.data.db);
  const ConvoyQuery pq = pds.data.query;
  (void)engine.Discover(pq);  // prime the simplification cache
  const int iters = opts.full ? 20 : 8;

  Stopwatch legacy_watch;
  size_t legacy_convoys = 0;
  for (int i = 0; i < iters; ++i) {
    legacy_convoys = engine.Discover(pq).size();
  }
  const double legacy_ms = legacy_watch.ElapsedSeconds() * 1e3 / iters;

  Stopwatch prepare_watch;
  size_t planned_convoys = 0;
  for (int i = 0; i < iters; ++i) {
    const auto plan = engine.Prepare(pq);
    const auto result = engine.Execute(plan.value());
    planned_convoys = result.value().Count();
  }
  const double planned_ms = prepare_watch.ElapsedSeconds() * 1e3 / iters;

  // Re-executing one prepared plan is the sweep-style usage Prepare exists
  // for: planning cost paid once, execution repeated.
  const auto reused_plan = engine.Prepare(pq);
  Stopwatch execute_watch;
  for (int i = 0; i < iters; ++i) {
    (void)engine.Execute(reused_plan.value());
  }
  const double execute_ms = execute_watch.ElapsedSeconds() * 1e3 / iters;

  PrintRow({{"path", 24}, {"ms/query", 12}, {"overhead", 12},
            {"convoys", 9}});
  PrintRule(57);
  PrintRow({{"legacy Discover", 24}, {Fmt(legacy_ms, 3), 12}, {"-", 12},
            {std::to_string(legacy_convoys), 9}});
  PrintRow({{"Prepare+Execute", 24}, {Fmt(planned_ms, 3), 12},
            {Fmt(planned_ms - legacy_ms, 3), 12},
            {std::to_string(planned_convoys), 9}});
  PrintRow({{"Execute (plan reused)", 24}, {Fmt(execute_ms, 3), 12},
            {Fmt(execute_ms - legacy_ms, 3), 12},
            {std::to_string(planned_convoys), 9}});

  // ------------------------------------------------------------------------
  // Build-once, query-N: the SnapshotStore's reason to exist. The
  // row-oriented path re-derives every per-tick snapshot on each call
  // (interpolation, alive-object scan, fresh GridIndex); the engine's
  // store pays that once at Prepare, so warm re-Executes of a CMC plan
  // touch only columnar data and cached grid indexes. Tracked across PRs:
  // warm must stay measurably below the per-call path.
  PrintHeader("Build-once query-N (CMC plan, N = 96, T = 800, ms/query)");
  const BenchDataset cds =
      PrepareDataset(BaseConfig(96, 800), opts.seed + 321);
  const ConvoyQuery cq = cds.data.query;
  const int cmc_iters = opts.full ? 10 : 5;

  Stopwatch rowpath_watch;
  size_t rowpath_convoys = 0;
  for (int i = 0; i < cmc_iters; ++i) {
    rowpath_convoys = Cmc(cds.data.db, cq).size();
  }
  const double rowpath_ms =
      rowpath_watch.ElapsedSeconds() * 1e3 / cmc_iters;

  const ConvoyEngine cmc_engine(cds.data.db);
  Stopwatch prepare_store_watch;
  const auto cmc_plan = cmc_engine.Prepare(cq, AlgorithmChoice::kCmc);
  const double prepare_store_ms =
      prepare_store_watch.ElapsedSeconds() * 1e3;

  Stopwatch cold_watch;  // store built, grid cache still empty
  size_t store_convoys = cmc_engine.Execute(cmc_plan.value()).value().Count();
  const double cold_ms = cold_watch.ElapsedSeconds() * 1e3;

  Stopwatch warm_store_watch;  // store + per-tick grid indexes all hot
  for (int i = 0; i < cmc_iters; ++i) {
    store_convoys = cmc_engine.Execute(cmc_plan.value()).value().Count();
  }
  const double warm_ms =
      warm_store_watch.ElapsedSeconds() * 1e3 / cmc_iters;

  PrintRow({{"path", 30}, {"ms/query", 12}, {"vs row path", 12},
            {"convoys", 9}});
  PrintRule(63);
  PrintRow({{"Cmc() per call (row path)", 30}, {Fmt(rowpath_ms, 3), 12},
            {"1.0x", 12}, {std::to_string(rowpath_convoys), 9}});
  PrintRow({{"Prepare (incl. store build)", 30},
            {Fmt(prepare_store_ms, 3), 12}, {"once", 12}, {"-", 9}});
  PrintRow({{"Execute #1 (cold grid cache)", 30}, {Fmt(cold_ms, 3), 12},
            {Fmt(rowpath_ms / std::max(1e-9, cold_ms), 2) + "x", 12},
            {std::to_string(store_convoys), 9}});
  PrintRow({{"Execute warm (store + grids)", 30}, {Fmt(warm_ms, 3), 12},
            {Fmt(rowpath_ms / std::max(1e-9, warm_ms), 2) + "x", 12},
            {std::to_string(store_convoys), 9}});

  RunHotpathSection(opts);

  std::cout << "\nshape: CuTS*'s advantage over CMC grows with N (snapshot "
               "clustering cost)\nand stays roughly constant in T (both "
               "scale linearly). Snapshot clustering,\npartition filtering, "
               "and refinement all parallelize across independent\nunits of "
               "work with identical results — on a single-core host the "
               "extra\nthreads only add scheduling overhead, so expect "
               "speedup only when\nhardware threads > 1.\n";
  return 0;
}
