// Scalability bench (beyond the paper's figures): how the algorithms scale
// with population size N and time-domain length T on a controlled workload,
// and what parallel refinement buys. The paper's evaluation fixes its four
// datasets; a library release needs the growth curves.

#include <thread>

#include "bench/bench_common.h"

namespace {

convoy::ScenarioConfig BaseConfig(size_t n, convoy::Tick t) {
  convoy::ScenarioConfig c = convoy::CarLikeConfig(1.0);
  c.num_objects = n;
  c.time_domain = t;
  c.lifetime_fraction = std::min(1.0, 500.0 / static_cast<double>(t));
  c.num_groups = std::max<size_t>(2, n / 40);
  c.query.k = 120;
  c.group_duration_min = 150;
  c.group_duration_max = 400;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);
  const double mult = opts.full ? 2.0 : 1.0;

  PrintHeader("Scalability in N (T = 1500, seconds)");
  PrintRow({{"N", 8}, {"CMC", 12}, {"CuTS*", 12}, {"speedup", 10},
            {"convoys", 10}});
  PrintRule(52);
  for (const size_t n :
       {size_t(64), size_t(128), size_t(256),
        static_cast<size_t>(512 * mult)}) {
    const BenchDataset ds = PrepareDataset(
        BaseConfig(n, static_cast<Tick>(1500)), opts.seed + n);
    DiscoveryStats cmc_stats;
    const auto cmc = Cmc(ds.data.db, ds.data.query, {}, &cmc_stats);
    DiscoveryStats cuts_stats;
    const auto cuts = RunVariant(ds, CutsVariant::kCutsStar, &cuts_stats);
    PrintRow({{std::to_string(n), 8},
              {Fmt(cmc_stats.total_seconds, 3), 12},
              {Fmt(cuts_stats.total_seconds, 3), 12},
              {Fmt(cmc_stats.total_seconds /
                       std::max(1e-9, cuts_stats.total_seconds), 1) + "x",
               10},
              {std::to_string(cuts.size()), 10}});
  }

  PrintHeader("Scalability in T (N = 128, seconds)");
  PrintRow({{"T", 8}, {"CMC", 12}, {"CuTS*", 12}, {"speedup", 10}});
  PrintRule(42);
  for (const Tick t :
       {Tick{1000}, Tick{2000}, Tick{4000},
        static_cast<Tick>(8000 * mult)}) {
    const BenchDataset ds = PrepareDataset(
        BaseConfig(128, t), opts.seed + static_cast<uint64_t>(t));
    DiscoveryStats cmc_stats;
    (void)Cmc(ds.data.db, ds.data.query, {}, &cmc_stats);
    DiscoveryStats cuts_stats;
    (void)RunVariant(ds, CutsVariant::kCutsStar, &cuts_stats);
    PrintRow({{std::to_string(t), 8},
              {Fmt(cmc_stats.total_seconds, 3), 12},
              {Fmt(cuts_stats.total_seconds, 3), 12},
              {Fmt(cmc_stats.total_seconds /
                       std::max(1e-9, cuts_stats.total_seconds), 1) + "x",
               10}});
  }

  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  PrintHeader("Thread sweep (default scenario, N = 128, T = 1200; " +
              std::to_string(hw) + " hardware thread(s))");
  PrintRow({{"threads", 10}, {"CMC(s)", 10}, {"speedup", 9}, {"CuTS(s)", 10},
            {"speedup", 9}, {"refine(s)", 11}, {"convoys", 9}});
  PrintRule(68);
  const BenchDataset ds =
      PrepareDataset(BaseConfig(128, 1200), opts.seed + 77);
  // --threads N narrows the sweep to {1, N} (the CI 2x-speedup check);
  // the default sweeps the ladder the ROADMAP tracks across PRs.
  std::vector<size_t> sweep = {1, 2, 4, 8};
  if (opts.threads > 1) sweep = {size_t(1), opts.threads};
  double cmc_serial = 0.0;
  double cuts_serial = 0.0;
  for (const size_t threads : sweep) {
    DiscoveryStats cmc_stats;
    (void)ParallelCmc(ds.data.db, ds.data.query, {}, &cmc_stats, threads);
    const CutsFilterOptions options = FilterOptionsFor(ds, threads);
    DiscoveryStats stats;
    const auto result = RunVariant(ds, CutsVariant::kCuts, &stats, options);
    if (threads == 1) {
      cmc_serial = cmc_stats.total_seconds;
      cuts_serial = stats.total_seconds;
    }
    PrintRow({{std::to_string(threads), 10},
              {Fmt(cmc_stats.total_seconds, 3), 10},
              {Fmt(cmc_serial / std::max(1e-9, cmc_stats.total_seconds), 2) +
                   "x", 9},
              {Fmt(stats.total_seconds, 3), 10},
              {Fmt(cuts_serial / std::max(1e-9, stats.total_seconds), 2) +
                   "x", 9},
              {Fmt(stats.refine_seconds, 3), 11},
              {std::to_string(result.size()), 9}});
  }
  // ------------------------------------------------------------------------
  // Planner overhead: the v2 Prepare+Execute path vs. the legacy Discover
  // shim on the same engine and seeded database, simplification cache warm
  // for both, so the difference is pure planner/executor machinery. Tracked
  // across PRs to keep the shim path effectively free.
  PrintHeader("Planner overhead (cache warm, ms/query, " +
              std::string("N = 96, T = 800)"));
  const BenchDataset pds = PrepareDataset(BaseConfig(96, 800), opts.seed + 123);
  const ConvoyEngine engine(pds.data.db);
  const ConvoyQuery pq = pds.data.query;
  (void)engine.Discover(pq);  // prime the simplification cache
  const int iters = opts.full ? 20 : 8;

  Stopwatch legacy_watch;
  size_t legacy_convoys = 0;
  for (int i = 0; i < iters; ++i) {
    legacy_convoys = engine.Discover(pq).size();
  }
  const double legacy_ms = legacy_watch.ElapsedSeconds() * 1e3 / iters;

  Stopwatch prepare_watch;
  size_t planned_convoys = 0;
  for (int i = 0; i < iters; ++i) {
    const auto plan = engine.Prepare(pq);
    const auto result = engine.Execute(plan.value());
    planned_convoys = result.value().Count();
  }
  const double planned_ms = prepare_watch.ElapsedSeconds() * 1e3 / iters;

  // Re-executing one prepared plan is the sweep-style usage Prepare exists
  // for: planning cost paid once, execution repeated.
  const auto reused_plan = engine.Prepare(pq);
  Stopwatch execute_watch;
  for (int i = 0; i < iters; ++i) {
    (void)engine.Execute(reused_plan.value());
  }
  const double execute_ms = execute_watch.ElapsedSeconds() * 1e3 / iters;

  PrintRow({{"path", 24}, {"ms/query", 12}, {"overhead", 12},
            {"convoys", 9}});
  PrintRule(57);
  PrintRow({{"legacy Discover", 24}, {Fmt(legacy_ms, 3), 12}, {"-", 12},
            {std::to_string(legacy_convoys), 9}});
  PrintRow({{"Prepare+Execute", 24}, {Fmt(planned_ms, 3), 12},
            {Fmt(planned_ms - legacy_ms, 3), 12},
            {std::to_string(planned_convoys), 9}});
  PrintRow({{"Execute (plan reused)", 24}, {Fmt(execute_ms, 3), 12},
            {Fmt(execute_ms - legacy_ms, 3), 12},
            {std::to_string(planned_convoys), 9}});

  // ------------------------------------------------------------------------
  // Build-once, query-N: the SnapshotStore's reason to exist. The
  // row-oriented path re-derives every per-tick snapshot on each call
  // (interpolation, alive-object scan, fresh GridIndex); the engine's
  // store pays that once at Prepare, so warm re-Executes of a CMC plan
  // touch only columnar data and cached grid indexes. Tracked across PRs:
  // warm must stay measurably below the per-call path.
  PrintHeader("Build-once query-N (CMC plan, N = 96, T = 800, ms/query)");
  const BenchDataset cds =
      PrepareDataset(BaseConfig(96, 800), opts.seed + 321);
  const ConvoyQuery cq = cds.data.query;
  const int cmc_iters = opts.full ? 10 : 5;

  Stopwatch rowpath_watch;
  size_t rowpath_convoys = 0;
  for (int i = 0; i < cmc_iters; ++i) {
    rowpath_convoys = Cmc(cds.data.db, cq).size();
  }
  const double rowpath_ms =
      rowpath_watch.ElapsedSeconds() * 1e3 / cmc_iters;

  const ConvoyEngine cmc_engine(cds.data.db);
  Stopwatch prepare_store_watch;
  const auto cmc_plan = cmc_engine.Prepare(cq, AlgorithmChoice::kCmc);
  const double prepare_store_ms =
      prepare_store_watch.ElapsedSeconds() * 1e3;

  Stopwatch cold_watch;  // store built, grid cache still empty
  size_t store_convoys = cmc_engine.Execute(cmc_plan.value()).value().Count();
  const double cold_ms = cold_watch.ElapsedSeconds() * 1e3;

  Stopwatch warm_store_watch;  // store + per-tick grid indexes all hot
  for (int i = 0; i < cmc_iters; ++i) {
    store_convoys = cmc_engine.Execute(cmc_plan.value()).value().Count();
  }
  const double warm_ms =
      warm_store_watch.ElapsedSeconds() * 1e3 / cmc_iters;

  PrintRow({{"path", 30}, {"ms/query", 12}, {"vs row path", 12},
            {"convoys", 9}});
  PrintRule(63);
  PrintRow({{"Cmc() per call (row path)", 30}, {Fmt(rowpath_ms, 3), 12},
            {"1.0x", 12}, {std::to_string(rowpath_convoys), 9}});
  PrintRow({{"Prepare (incl. store build)", 30},
            {Fmt(prepare_store_ms, 3), 12}, {"once", 12}, {"-", 9}});
  PrintRow({{"Execute #1 (cold grid cache)", 30}, {Fmt(cold_ms, 3), 12},
            {Fmt(rowpath_ms / std::max(1e-9, cold_ms), 2) + "x", 12},
            {std::to_string(store_convoys), 9}});
  PrintRow({{"Execute warm (store + grids)", 30}, {Fmt(warm_ms, 3), 12},
            {Fmt(rowpath_ms / std::max(1e-9, warm_ms), 2) + "x", 12},
            {std::to_string(store_convoys), 9}});

  std::cout << "\nshape: CuTS*'s advantage over CMC grows with N (snapshot "
               "clustering cost)\nand stays roughly constant in T (both "
               "scale linearly). Snapshot clustering,\npartition filtering, "
               "and refinement all parallelize across independent\nunits of "
               "work with identical results — on a single-core host the "
               "extra\nthreads only add scheduling overhead, so expect "
               "speedup only when\nhardware threads > 1.\n";
  return 0;
}
