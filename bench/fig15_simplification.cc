// Figure 15 — comparison of the trajectory simplification methods on the
// Cattle dataset: (a) vertex reduction percentage and (b) elapsed
// simplification time, as the tolerance delta grows. Paper shape:
// DP >= DP+ >= DP* in reduction power; DP+ fastest; all methods get faster
// with larger delta (divide-and-conquer terminates earlier).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);
  const ScaleSet scales = ScalesFor(opts);

  const ScenarioData cattle =
      GenerateScenario(CattleLikeConfig(scales.cattle), opts.seed + 1);

  // The paper sweeps delta = 10..40 (e = 300); ours scales with our e.
  const double e = cattle.query.e;
  const std::vector<double> deltas = {e * 0.033, e * 0.067, e * 0.1, e * 0.13,
                                      e * 0.17, e * 0.23};

  PrintHeader("Figure 15(a): vertex reduction (%) vs delta (Cattle)");
  PrintRow({{"delta", 10}, {"DP", 10}, {"DP+", 10}, {"DP*", 10}});
  PrintRule(40);
  for (const double delta : deltas) {
    std::vector<std::string> row = {Fmt(delta, 2)};
    for (const auto kind : {SimplifierKind::kDp, SimplifierKind::kDpPlus,
                            SimplifierKind::kDpStar}) {
      const auto simp = SimplifyDatabase(cattle.db, delta, kind);
      row.push_back(Fmt(VertexReductionPercent(cattle.db, simp), 1));
    }
    PrintRow({{row[0], 10}, {row[1], 10}, {row[2], 10}, {row[3], 10}});
  }

  PrintHeader("Figure 15(b): simplification time (ms) vs delta (Cattle)");
  PrintRow({{"delta", 10}, {"DP", 10}, {"DP+", 10}, {"DP*", 10}});
  PrintRule(40);
  for (const double delta : deltas) {
    std::vector<std::string> row = {Fmt(delta, 2)};
    for (const auto kind : {SimplifierKind::kDp, SimplifierKind::kDpPlus,
                            SimplifierKind::kDpStar}) {
      // Median of 3 runs to steady the small numbers.
      std::vector<double> times;
      for (int rep = 0; rep < 3; ++rep) {
        Stopwatch watch;
        const auto simp = SimplifyDatabase(cattle.db, delta, kind);
        times.push_back(watch.ElapsedMillis());
        if (simp.empty()) return 1;  // keep the optimizer honest
      }
      row.push_back(Fmt(Quantile(times, 0.5), 2));
    }
    PrintRow({{row[0], 10}, {row[1], 10}, {row[2], 10}, {row[3], 10}});
  }

  std::cout << "\npaper shape: DP reduces the most (perpendicular distance "
               "is the loosest\nmeasure), DP* the least (time-ratio distance "
               ">= perpendicular); DP+ is the\nfastest thanks to balanced "
               "splits; every method speeds up as delta grows.\n";
  return 0;
}
