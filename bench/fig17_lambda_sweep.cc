// Figure 17 — effect of the time-partition length lambda on the Truck and
// Cattle datasets: refinement unit and total discovery time per CuTS
// variant. Paper shape: refinement unit rises with lambda (longer
// partitions make sloppier filters); total time is U-shaped — small lambda
// means many clustering rounds, large lambda means expensive refinement —
// and on Cattle, CuTS+ rivals CuTS* at large lambda because simplification
// speed dominates there.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);
  const ScaleSet scales = ScalesFor(opts);

  const BenchDataset truck =
      PrepareDataset(TruckLikeConfig(scales.truck), opts.seed);
  const BenchDataset cattle =
      PrepareDataset(CattleLikeConfig(scales.cattle), opts.seed + 1);

  const std::vector<Tick> truck_lambdas = {5, 10, 15, 20};
  const std::vector<Tick> cattle_lambdas = {10, 30, 50, 70};

  struct Sweep {
    const BenchDataset* ds;
    const std::vector<Tick>* lambdas;
  };
  for (const Sweep& sweep :
       {Sweep{&truck, &truck_lambdas}, Sweep{&cattle, &cattle_lambdas}}) {
    PrintHeader("Figure 17 (" + sweep.ds->data.name +
                "): refinement unit (M) and elapsed time (s) vs lambda");
    PrintRow({{"lambda", 10},
              {"CuTS ru", 12},
              {"CuTS+ ru", 12},
              {"CuTS* ru", 12},
              {"CuTS t", 10},
              {"CuTS+ t", 10},
              {"CuTS* t", 10}});
    PrintRule(76);
    for (const Tick lambda : *sweep.lambdas) {
      std::vector<std::string> units;
      std::vector<std::string> times;
      for (const auto variant : {CutsVariant::kCuts, CutsVariant::kCutsPlus,
                                 CutsVariant::kCutsStar}) {
        CutsFilterOptions options = FilterOptionsFor(*sweep.ds);
        options.lambda = lambda;
        DiscoveryStats stats;
        (void)RunVariant(*sweep.ds, variant, &stats, options);
        units.push_back(Fmt(stats.refinement_unit / 1e6, 3));
        times.push_back(Fmt(stats.total_seconds, 3));
      }
      PrintRow({{std::to_string(lambda), 10},
                {units[0], 12},
                {units[1], 12},
                {units[2], 12},
                {times[0], 10},
                {times[1], 10},
                {times[2], 10}});
    }
  }
  std::cout << "\npaper shape: refinement unit climbs with lambda for all "
               "methods; CuTS*\nstays the most effective filter. Elapsed "
               "time bottoms out at moderate\nlambda; on Cattle the "
               "fast-simplifying CuTS+ closes the gap to CuTS*.\n";
  return 0;
}
