// Figure 19 (Appendix B.1) — discovery quality of the moving-cluster
// method MC2 when used for convoy queries: false positives (a) and false
// negatives (b) as the Jaccard threshold theta varies. Paper shape: large
// false-positive rates (MC2 has no lifetime constraint) that grow with
// theta, and false negatives that also grow with theta (stricter overlap
// breaks chains); the use of moving clusters for convoys is unreliable.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);

  const std::vector<double> thetas = {0.4, 0.6, 0.8, 1.0};
  const std::vector<BenchDataset> datasets = AllDatasets(opts);

  PrintHeader("Figure 19(a): MC2 false positives (%) vs theta");
  PrintRow({{"theta", 8}, {"Truck", 12}, {"Cattle", 12}, {"Car", 12},
            {"Taxi", 12}});
  PrintRule(56);

  // Cache the exact results; they do not depend on theta.
  std::vector<std::vector<Convoy>> exact;
  exact.reserve(datasets.size());
  for (const BenchDataset& ds : datasets) {
    exact.push_back(Cmc(ds.data.db, ds.data.query));
  }

  std::vector<std::vector<Mc2Accuracy>> acc(thetas.size());
  for (size_t ti = 0; ti < thetas.size(); ++ti) {
    for (size_t di = 0; di < datasets.size(); ++di) {
      Mc2Options options;
      options.theta = thetas[ti];
      acc[ti].push_back(MeasureMc2Accuracy(datasets[di].data.db,
                                           datasets[di].data.query, options,
                                           exact[di]));
    }
    PrintRow({{Fmt(thetas[ti], 1), 8},
              {Fmt(acc[ti][0].false_positive_pct, 1), 12},
              {Fmt(acc[ti][1].false_positive_pct, 1), 12},
              {Fmt(acc[ti][2].false_positive_pct, 1), 12},
              {Fmt(acc[ti][3].false_positive_pct, 1), 12}});
  }

  PrintHeader("Figure 19(b): MC2 false negatives (%) vs theta");
  PrintRow({{"theta", 8}, {"Truck", 12}, {"Cattle", 12}, {"Car", 12},
            {"Taxi", 12}});
  PrintRule(56);
  for (size_t ti = 0; ti < thetas.size(); ++ti) {
    PrintRow({{Fmt(thetas[ti], 1), 8},
              {Fmt(acc[ti][0].false_negative_pct, 1), 12},
              {Fmt(acc[ti][1].false_negative_pct, 1), 12},
              {Fmt(acc[ti][2].false_negative_pct, 1), 12},
              {Fmt(acc[ti][3].false_negative_pct, 1), 12}});
  }

  std::cout << "\n(reported chains per dataset at theta=0.6: ";
  for (size_t di = 0; di < datasets.size(); ++di) {
    std::cout << datasets[di].data.name << "=" << acc[1][di].reported << " ";
  }
  std::cout << ")\n";
  std::cout << "\npaper shape: false positives dominated by chains shorter "
               "than k (MC2 has\nno lifetime constraint), especially on the "
               "dense Cattle data; false\nnegatives rise with theta as "
               "strict overlap requirements break chains\nthat real convoys "
               "would survive.\n";
  return 0;
}
