// Section 7.4 guideline validation (beyond the paper's figures): the paper
// *claims* its delta / lambda selection rules land near the performance
// optimum but never plots the guideline value against a sweep. This bench
// does exactly that: for each dataset it sweeps delta (and lambda) around
// the auto-derived value and marks the derived value's position, so the
// quality of the guideline is visible rather than asserted.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace convoy;
  using namespace convoy::bench;
  const BenchOptions opts = ParseArgs(argc, argv);
  const ScaleSet scales = ScalesFor(opts);

  struct Entry {
    const char* name;
    ScenarioConfig config;
    uint64_t seed;
  };
  const Entry entries[] = {
      {"TruckLike", TruckLikeConfig(scales.truck), opts.seed},
      {"CarLike", CarLikeConfig(scales.car), opts.seed + 2},
      {"TaxiLike", TaxiLikeConfig(scales.taxi), opts.seed + 3},
  };

  for (const Entry& entry : entries) {
    const BenchDataset ds = PrepareDataset(entry.config, entry.seed);

    PrintHeader(std::string("delta sweep around the guideline (") +
                entry.name + ", CuTS*; derived delta = " + Fmt(ds.delta, 2) +
                ")");
    PrintRow({{"delta", 12}, {"time(s)", 12}, {"runit(M)", 12},
              {"derived?", 10}});
    PrintRule(46);
    for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      const double delta = ds.delta * factor;
      if (delta <= 0.0) continue;
      CutsFilterOptions options = FilterOptionsFor(ds);
      options.delta = delta;
      DiscoveryStats stats;
      (void)RunVariant(ds, CutsVariant::kCutsStar, &stats, options);
      PrintRow({{Fmt(delta, 2), 12},
                {Fmt(stats.total_seconds, 3), 12},
                {Fmt(stats.refinement_unit / 1e6, 3), 12},
                {factor == 1.0 ? "<== derived" : "", 10}});
    }

    PrintHeader(std::string("lambda sweep around the guideline (") +
                entry.name + ", CuTS*; derived lambda = " +
                std::to_string(ds.lambda) + ")");
    PrintRow({{"lambda", 12}, {"time(s)", 12}, {"runit(M)", 12},
              {"derived?", 10}});
    PrintRule(46);
    for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const Tick lambda = std::max<Tick>(
          1, static_cast<Tick>(std::llround(
                 static_cast<double>(ds.lambda) * factor)));
      CutsFilterOptions options = FilterOptionsFor(ds);
      options.lambda = lambda;
      DiscoveryStats stats;
      (void)RunVariant(ds, CutsVariant::kCutsStar, &stats, options);
      PrintRow({{std::to_string(lambda), 12},
                {Fmt(stats.total_seconds, 3), 12},
                {Fmt(stats.refinement_unit / 1e6, 3), 12},
                {factor == 1.0 ? "<== derived" : "", 10}});
    }
  }
  std::cout << "\nreading: the derived values should sit in the flat bottom "
               "of each time\ncurve — within ~2x of the best sweep point. "
               "Parameters affect performance\nonly; every sweep point "
               "returns the same convoys.\n";
  return 0;
}
