// Quickstart: build a tiny trajectory database by hand, run a convoy query
// through the ConvoyEngine planner/executor, and print the result.
//
//   $ ./build/examples/quickstart
//
// Three delivery vans leave the depot; vans 1 and 2 ride together for the
// first six minutes, van 0 goes its own way.

#include <iostream>

#include "convoy/convoy.h"

int main() {
  convoy::TrajectoryDatabase db;

  // Van 0: heads north alone.
  convoy::Trajectory van0(0);
  for (convoy::Tick t = 0; t < 10; ++t) {
    van0.Append(/*x=*/0.0, /*y=*/40.0 * static_cast<double>(t), t);
  }
  db.Add(std::move(van0));

  // Vans 1 and 2: drive east side by side for 6 ticks, then split.
  convoy::Trajectory van1(1);
  convoy::Trajectory van2(2);
  for (convoy::Tick t = 0; t < 10; ++t) {
    const double x = 50.0 * static_cast<double>(t);
    van1.Append(x, 0.0, t);
    const double detour = t >= 6 ? 300.0 : 4.0;  // splits off at t=6
    van2.Append(x, detour, t);
  }
  db.Add(std::move(van1));
  db.Add(std::move(van2));

  // Query: at least 2 objects within range 10, for at least 5 ticks.
  const convoy::ConvoyQuery query{/*m=*/2, /*k=*/5, /*e=*/10.0};

  // Prepare validates the query and picks the physical algorithm (this
  // database is tiny, so the planner chooses exact CMC; pass an explicit
  // AlgorithmChoice to override). The plan is inspectable before running.
  convoy::ConvoyEngine engine(std::move(db));
  const auto plan = engine.Prepare(query);
  if (!plan.ok()) {
    std::cerr << "bad query: " << plan.status() << "\n";
    return 1;
  }
  std::cout << plan->Explain() << "\n";

  const auto result = engine.Execute(*plan);
  if (!result.ok()) {  // only possible with a CancelToken installed
    std::cerr << "execution failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << "found " << result->Count() << " convoy(s)\n";
  for (const convoy::Convoy& c : *result) {
    std::cout << "  objects ";
    for (const convoy::ObjectId id : c.objects) std::cout << id << " ";
    std::cout << "traveled together during ticks [" << c.start_tick << ", "
              << c.end_tick << "]\n";
  }
  std::cout << "discovery took " << result->stats().total_seconds * 1e3
            << " ms\n";

  // The same result, computed by the free-function baseline:
  const auto reference = convoy::Cmc(engine.db(), query);
  std::cout << "CMC agrees: "
            << (convoy::SameResultSet(reference, result->convoys()) ? "yes"
                                                                    : "NO")
            << "\n";
  return 0;
}
