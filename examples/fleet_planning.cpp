// Fleet throughput planning — the paper's trucking application (Section 1):
// delivery trucks with coherent trajectory patterns indicate shared routes
// that can be consolidated.
//
//   $ ./build/examples/fleet_planning [seed]
//
// Generates an Athens-style concrete-truck workload (TruckLike preset),
// discovers convoys with all three CuTS variants, compares their costs, and
// prints a consolidation report.

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "convoy/convoy.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  const convoy::ScenarioData data =
      convoy::GenerateScenario(convoy::TruckLikeConfig(/*time_scale=*/0.25),
                               seed);
  convoy::PrintDatasetReport(data.db, "delivery trucks", std::cout);

  const convoy::ConvoyQuery query = data.query;  // m=3, k=180, e=8
  std::cout << "\nquery: m=" << query.m << " k=" << query.k
            << " e=" << query.e << "\n\n";

  // The engine caches simplifications across the variant sweep, and its
  // validating TryDiscover entry point rejects an out-of-contract query
  // (say, planner input with e = 0) up front instead of computing garbage.
  convoy::ConvoyEngine engine(data.db);

  // Run every variant; they must agree, and the stats show the trade-offs
  // the paper's Section 7.3 discusses.
  std::vector<convoy::Convoy> result;
  std::cout << std::left << std::setw(8) << "method" << std::right
            << std::setw(12) << "total(ms)" << std::setw(12) << "simplify"
            << std::setw(12) << "filter" << std::setw(12) << "refine"
            << std::setw(12) << "candidates" << std::setw(10) << "convoys"
            << "\n";
  for (const auto variant :
       {convoy::CutsVariant::kCuts, convoy::CutsVariant::kCutsPlus,
        convoy::CutsVariant::kCutsStar}) {
    convoy::DiscoveryStats stats;
    convoy::StatusOr<std::vector<convoy::Convoy>> discovered =
        engine.TryDiscover(query, variant, {}, &stats);
    if (!discovered.ok()) {
      std::cerr << "query rejected: " << discovered.status() << "\n";
      return 1;
    }
    result = *std::move(discovered);
    std::cout << std::left << std::setw(8) << convoy::ToString(variant)
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(12) << stats.total_seconds * 1e3 << std::setw(12)
              << stats.simplify_seconds * 1e3 << std::setw(12)
              << stats.filter_seconds * 1e3 << std::setw(12)
              << stats.refine_seconds * 1e3 << std::setw(12)
              << stats.num_candidates << std::setw(10) << result.size()
              << "\n";
  }

  std::cout << "\nconsolidation report (longest shared hauls first):\n";
  std::sort(result.begin(), result.end(),
            [](const convoy::Convoy& a, const convoy::Convoy& b) {
              return a.Lifetime() > b.Lifetime();
            });
  size_t shown = 0;
  for (const convoy::Convoy& c : result) {
    if (++shown > 10) break;
    std::cout << "  " << c.objects.size() << " trucks shared a "
              << c.Lifetime() / 60 << "-minute haul (" << convoy::ToString(c)
              << ") -> candidate for load consolidation\n";
  }
  if (result.empty()) std::cout << "  no coherent truck groups found\n";
  return 0;
}
