// Wildlife / livestock herd tracking — the paper's Cattle dataset setting:
// GPS ear-tags sampled every second over many hours, tiny population,
// strong grouping. Demonstrates the Section 7.4 parameter guidelines
// (auto-derived delta and lambda) and the simplification trade-offs that
// dominate this workload shape (paper Figure 13, Cattle panel).
//
//   $ ./build/examples/herd_tracking [seed]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "convoy/convoy.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 19;

  const convoy::ScenarioData data = convoy::GenerateScenario(
      convoy::CattleLikeConfig(/*time_scale=*/0.05), seed);
  convoy::PrintDatasetReport(data.db, "cattle ear-tags", std::cout);

  const convoy::ConvoyQuery query = data.query;  // m=2, k=180, e=25

  // Show what the Section 7.4 guidelines derive for this data.
  const double delta = convoy::ComputeDelta(data.db, query.e);
  const auto simplified = convoy::SimplifyDatabase(
      data.db, delta, convoy::SimplifierKind::kDpStar);
  const convoy::Tick lambda = convoy::ComputeLambda(data.db, simplified);
  std::cout << "\nauto-derived parameters: delta=" << std::fixed
            << std::setprecision(2) << delta << " lambda=" << lambda << "\n";
  std::cout << "DP* vertex reduction at that delta: " << std::setprecision(1)
            << convoy::VertexReductionPercent(data.db, simplified) << "%\n";

  // Long histories + tiny N: simplification dominates, so CuTS+ (fastest
  // simplifier) competes with CuTS* here — the paper's Cattle observation.
  std::cout << "\n" << std::left << std::setw(8) << "method" << std::right
            << std::setw(12) << "total(ms)" << std::setw(14)
            << "simplify(ms)" << std::setw(10) << "convoys" << "\n";
  std::vector<convoy::Convoy> herds;
  // kFullWindow refinement guarantees the exact maximal-convoy set, so the
  // two variants below report identical herds (only their speed differs).
  convoy::CutsFilterOptions options;
  options.refine_mode = convoy::RefineMode::kFullWindow;
  for (const auto variant :
       {convoy::CutsVariant::kCutsPlus, convoy::CutsVariant::kCutsStar}) {
    convoy::DiscoveryStats stats;
    herds = convoy::Cuts(data.db, query, variant, options, &stats);
    std::cout << std::left << std::setw(8) << convoy::ToString(variant)
              << std::right << std::setprecision(1) << std::setw(12)
              << stats.total_seconds * 1e3 << std::setw(14)
              << stats.simplify_seconds * 1e3 << std::setw(10)
              << herds.size() << "\n";
  }

  std::cout << "\nherding report:\n";
  for (const convoy::Convoy& herd : herds) {
    std::cout << "  animals ";
    for (const convoy::ObjectId id : herd.objects) std::cout << id << " ";
    std::cout << "grazed together for " << herd.Lifetime() / 60
              << " minutes\n";
    // Each reported herd is re-checked against the formal definition.
    if (!convoy::VerifyConvoy(data.db, query, herd)) {
      std::cout << "    WARNING: failed verification (should not happen)\n";
      return 1;
    }
  }
  if (herds.empty()) std::cout << "  no herding behaviour detected\n";
  return 0;
}
