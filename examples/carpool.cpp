// Carpool candidate detection — the paper's motivating application
// (Section 1): cars that follow the same route at the same time are
// candidates for ride-sharing.
//
//   $ ./build/examples/carpool [seed]
//
// Generates a Copenhagen-style commuter workload (CarLike preset), runs a
// convoy query, and prints a carpooling report: which cars could share a
// ride, for how long, and the estimated saving in vehicle-minutes.

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "convoy/convoy.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // A commuter scenario: ~180 cars over a morning, several groups sharing
  // routes (the planted ground truth stands in for real shared commutes).
  convoy::ScenarioConfig config = convoy::CarLikeConfig(/*time_scale=*/0.25);
  config.num_groups = 6;
  const convoy::ScenarioData data = convoy::GenerateScenario(config, seed);

  convoy::PrintDatasetReport(data.db, "commuter cars", std::cout);

  // Ride-sharing makes sense for >= 2 cars within ~80 m for >= 3 minutes.
  const convoy::ConvoyQuery query{/*m=*/2, /*k=*/180, /*e=*/80.0};

  convoy::DiscoveryStats stats;
  const auto convoys = convoy::Cuts(data.db, query,
                                    convoy::CutsVariant::kCutsStar, {}, &stats);

  std::cout << "\ncarpool candidates (convoys with m>=" << query.m
            << ", k>=" << query.k << " ticks, e=" << query.e << " m):\n";
  double saved_vehicle_ticks = 0.0;
  for (const convoy::Convoy& c : convoys) {
    // If the group shared one vehicle, all but one car could stay home for
    // the duration of the shared stretch.
    const double saving = static_cast<double>(c.objects.size() - 1) *
                          static_cast<double>(c.Lifetime());
    saved_vehicle_ticks += saving;
    std::cout << "  cars ";
    for (const convoy::ObjectId id : c.objects) std::cout << id << " ";
    std::cout << "| shared stretch [" << c.start_tick << ", " << c.end_tick
              << "] (" << c.Lifetime() << " s)"
              << " | potential saving " << std::fixed << std::setprecision(0)
              << saving / 60.0 << " vehicle-minutes\n";
  }
  std::cout << "total: " << convoys.size() << " candidate group(s), "
            << std::fixed << std::setprecision(0)
            << saved_vehicle_ticks / 60.0
            << " vehicle-minutes saveable\n";
  std::cout << "discovery: " << std::setprecision(1)
            << stats.total_seconds * 1e3 << " ms, filter kept "
            << stats.num_candidates << " candidate(s)\n";
  return 0;
}
