// Live convoy monitor — online discovery over a position stream.
//
//   $ ./build/examples/live_monitor [seed]
//
// Simulates a dispatch center receiving taxi positions tick by tick and
// raising an alert the moment a convoy *closes* (the group disperses), plus
// a final report at end of stream. Uses StreamingCmc, the incremental form
// of the paper's CMC algorithm, and demonstrates carry-forward handling of
// silent transponders.

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "convoy/convoy.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  // The "live feed": a generated taxi day, replayed in tick order.
  convoy::ScenarioConfig config = convoy::TaxiLikeConfig(1.0);
  config.num_groups = 4;
  const convoy::ScenarioData data = convoy::GenerateScenario(config, seed);
  convoy::PrintDatasetReport(data.db, "live taxi feed", std::cout);

  const convoy::ConvoyQuery query = data.query;
  convoy::StreamingCmc::Options options;
  options.carry_forward_ticks = 4;  // transponders report irregularly
  convoy::StreamingCmc stream(query, options);

  size_t alerts = 0;
  size_t reports = 0;
  convoy::Stopwatch watch;
  for (convoy::Tick t = data.db.BeginTick(); t <= data.db.EndTick(); ++t) {
    // A real feed can replay or reorder ticks; the stream rejects those
    // with a recoverable Status instead of corrupting its candidates, so a
    // dispatch center just logs and keeps serving.
    if (const convoy::Status s = stream.BeginTick(t); !s.ok()) {
      std::cerr << "dropping tick " << t << ": " << s << "\n";
      continue;
    }
    for (const convoy::Trajectory& taxi : data.db.trajectories()) {
      // Only actual transmissions reach the center (no interpolation —
      // carry-forward covers short silences).
      const auto pos = taxi.LocationAt(t);
      if (pos.has_value()) {
        // A garbage transponder report (e.g. NaN coordinates) is dropped
        // by Report; the rest of the snapshot is unaffected.
        if (stream.Report(taxi.id(), *pos).ok()) ++reports;
      }
    }
    for (const convoy::Convoy& c : stream.EndTick().value()) {
      ++alerts;
      std::cout << "[tick " << std::setw(4) << t << "] convoy closed: "
                << convoy::ToString(c) << "\n";
    }
  }
  for (const convoy::Convoy& c : stream.Finish().value()) {
    ++alerts;
    std::cout << "[end of stream] convoy still active: "
              << convoy::ToString(c) << "\n";
  }

  std::cout << "\nprocessed " << reports << " position reports in "
            << std::fixed << std::setprecision(1) << watch.ElapsedMillis()
            << " ms (" << alerts << " convoy alert(s))\n";
  std::cout << "batch CMC over the same feed finds "
            << convoy::Cmc(data.db, query).size()
            << " convoy(s) offline (carry-forward vs interpolation can "
               "differ at gaps)\n";
  return 0;
}
