// convoy_serverd — the convoy streaming server daemon.
//
// Usage:
//   convoy_serverd [--host 127.0.0.1] [--port 0] [--ring-capacity 64]
//                  [--stats-json out.json] [--max-seconds S]
//
// Binds a TCP listener (port 0 = ephemeral; the bound port is printed as
// "listening on HOST:PORT" so scripts can scrape it), then serves the
// length-prefixed binary protocol of src/server/protocol.h: streaming
// ingest sessions, live convoy subscriptions, ad-hoc planned queries, and
// metrics dumps. See README "Server".
//
// Runs until SIGINT/SIGTERM (clean shutdown: every stream worker drains
// and joins) or until --max-seconds elapses (for smoke tests). On exit,
// --stats-json writes the server's metrics JSON — the same payload the
// in-band kStatsRequest returns.
//
// Exit codes: 0 clean shutdown, 1 usage error, 2 cannot bind/write.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "convoy/convoy.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct DaemonOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t ring_capacity = 64;
  std::string stats_json;
  double max_seconds = -1.0;  // < 0: run until signalled
};

bool ParseArgs(int argc, char** argv, DaemonOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      opts->host = value;
    } else if (arg == "--port" && (value = next())) {
      opts->port = static_cast<uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--ring-capacity" && (value = next())) {
      opts->ring_capacity =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--stats-json" && (value = next())) {
      opts->stats_json = value;
    } else if (arg == "--max-seconds" && (value = next())) {
      opts->max_seconds = std::strtod(value, nullptr);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
    if (value == nullptr && arg.rfind("--", 0) == 0 && arg != "--help") {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::cout << "convoy_serverd — convoy streaming server\n"
                 "  convoy_serverd [--host H] [--port P] [--ring-capacity N]\n"
                 "                 [--stats-json out.json] [--max-seconds S]\n";
    return argc > 1 ? 1 : 0;
  }

  convoy::server::ServerOptions server_options;
  server_options.host = opts.host;
  server_options.port = opts.port;
  server_options.ring_capacity =
      opts.ring_capacity == 0 ? 1 : opts.ring_capacity;

  convoy::server::ConvoyServer server(server_options);
  if (const convoy::Status started = server.Start(); !started.ok()) {
    std::cerr << "cannot start: " << started << "\n";
    return 2;
  }
  // Scraped by run_checks.sh and the e2e harness — keep the format stable.
  std::cout << "listening on " << server.host() << ":" << server.port()
            << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  convoy::Stopwatch uptime;
  while (g_stop == 0) {
    if (opts.max_seconds >= 0 && uptime.ElapsedSeconds() >= opts.max_seconds) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "shutting down\n";
  server.Shutdown();

  if (!opts.stats_json.empty()) {
    std::ofstream out(opts.stats_json);
    if (!out) {
      std::cerr << "cannot write " << opts.stats_json << "\n";
      return 2;
    }
    out << server.StatsJson() << "\n";
    std::cout << "wrote " << opts.stats_json << "\n";
  }
  return 0;
}
