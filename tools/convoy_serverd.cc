// convoy_serverd — the convoy streaming server daemon.
//
// Usage:
//   convoy_serverd [--host 127.0.0.1] [--port 0] [--ring-capacity 64]
//                  [--stats-json out.json] [--max-seconds S]
//                  [--wal-dir DIR] [--fsync none|interval|every_tick]
//                  [--fsync-interval-ms 50] [--wal-segment-bytes N]
//                  [--idle-timeout-ms 0] [--load-shed-high-water 0]
//                  [--subscriber-queue 1024]
//                  [--fault-seed S] [--fault-short-write-prob P]
//                  [--fault-eintr-prob P] [--fault-fsync-fail-prob P]
//                  [--fault-fsync-delay-us N]
//
// Binds a TCP listener (port 0 = ephemeral; the bound port is printed as
// "listening on HOST:PORT" so scripts can scrape it), then serves the
// length-prefixed binary protocol of src/server/protocol.h: streaming
// ingest sessions, live convoy subscriptions, ad-hoc planned queries, and
// metrics dumps. See README "Server".
//
// Durability: --wal-dir turns on the write-ahead log — accepted ingest is
// logged before it is acked, and a restarted daemon pointed at the same
// directory replays the log, resuming every stream bit-identical to an
// uninterrupted run (the chaos harness in convoy_loadgen kill -9s the
// daemon mid-ingest to verify exactly this).
//
// The --fault-* flags install a seeded fault injector over all socket and
// WAL I/O (short writes, spurious EINTR, failing/slow fsync) — the chaos
// harness's server-side knob. Off (zero) by default.
//
// Runs until SIGINT/SIGTERM (clean shutdown: every stream worker drains
// and joins) or until --max-seconds elapses (for smoke tests). On exit,
// --stats-json writes the server's metrics JSON — the same payload the
// in-band kStatsRequest returns.
//
// Exit codes: 0 clean shutdown, 1 usage error, 2 cannot bind/write.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "convoy/convoy.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct DaemonOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t ring_capacity = 64;
  std::string stats_json;
  double max_seconds = -1.0;  // < 0: run until signalled

  std::string wal_dir;
  convoy::wal::FsyncPolicy fsync = convoy::wal::FsyncPolicy::kNone;
  uint32_t fsync_interval_ms = 50;
  size_t wal_segment_bytes = 64u * 1024u * 1024u;
  uint32_t idle_timeout_ms = 0;
  size_t load_shed_high_water = 0;
  size_t subscriber_queue = 1024;

  convoy::wal::FaultInjector::Options fault;
  bool fault_enabled = false;
};

bool ParseArgs(int argc, char** argv, DaemonOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      opts->host = value;
    } else if (arg == "--port" && (value = next())) {
      opts->port = static_cast<uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--ring-capacity" && (value = next())) {
      opts->ring_capacity =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--stats-json" && (value = next())) {
      opts->stats_json = value;
    } else if (arg == "--max-seconds" && (value = next())) {
      opts->max_seconds = std::strtod(value, nullptr);
    } else if (arg == "--wal-dir" && (value = next())) {
      opts->wal_dir = value;
    } else if (arg == "--fsync" && (value = next())) {
      const convoy::StatusOr<convoy::wal::FsyncPolicy> policy =
          convoy::wal::ParseFsyncPolicy(value);
      if (!policy.ok()) {
        std::cerr << policy.status() << "\n";
        return false;
      }
      opts->fsync = *policy;
    } else if (arg == "--fsync-interval-ms" && (value = next())) {
      opts->fsync_interval_ms =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--wal-segment-bytes" && (value = next())) {
      opts->wal_segment_bytes =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--idle-timeout-ms" && (value = next())) {
      opts->idle_timeout_ms =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--load-shed-high-water" && (value = next())) {
      opts->load_shed_high_water =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--subscriber-queue" && (value = next())) {
      opts->subscriber_queue =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--fault-seed" && (value = next())) {
      opts->fault.seed = std::strtoull(value, nullptr, 10);
      opts->fault_enabled = true;
    } else if (arg == "--fault-short-write-prob" && (value = next())) {
      opts->fault.short_write_prob = std::strtod(value, nullptr);
      opts->fault_enabled = true;
    } else if (arg == "--fault-eintr-prob" && (value = next())) {
      opts->fault.eintr_prob = std::strtod(value, nullptr);
      opts->fault_enabled = true;
    } else if (arg == "--fault-fsync-fail-prob" && (value = next())) {
      opts->fault.fsync_fail_prob = std::strtod(value, nullptr);
      opts->fault_enabled = true;
    } else if (arg == "--fault-fsync-delay-us" && (value = next())) {
      opts->fault.fsync_delay_us =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
      opts->fault_enabled = true;
    } else if (arg == "--fault-fail-writes-after" && (value = next())) {
      opts->fault.fail_writes_after = std::strtoull(value, nullptr, 10);
      opts->fault_enabled = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
    if (value == nullptr && arg.rfind("--", 0) == 0 && arg != "--help") {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::cout
        << "convoy_serverd — convoy streaming server\n"
           "  convoy_serverd [--host H] [--port P] [--ring-capacity N]\n"
           "                 [--stats-json out.json] [--max-seconds S]\n"
           "                 [--wal-dir DIR] [--fsync none|interval|"
           "every_tick]\n"
           "                 [--fsync-interval-ms MS] "
           "[--wal-segment-bytes N]\n"
           "                 [--idle-timeout-ms MS] "
           "[--load-shed-high-water N]\n"
           "                 [--subscriber-queue N]\n"
           "                 [--fault-seed S] [--fault-short-write-prob P]\n"
           "                 [--fault-eintr-prob P] "
           "[--fault-fsync-fail-prob P]\n"
           "                 [--fault-fsync-delay-us N] "
           "[--fault-fail-writes-after N]\n";
    return argc > 1 ? 1 : 0;
  }

  // The injector outlives the server: hooks may fire until the last
  // worker joins inside Shutdown(). Installed before Start() so WAL
  // recovery I/O is faultable too.
  convoy::wal::FaultInjector injector(opts.fault);
  if (opts.fault_enabled) convoy::wal::SetFaultInjector(&injector);

  convoy::server::ServerOptions server_options;
  server_options.host = opts.host;
  server_options.port = opts.port;
  server_options.ring_capacity =
      opts.ring_capacity == 0 ? 1 : opts.ring_capacity;
  server_options.wal_dir = opts.wal_dir;
  server_options.fsync = opts.fsync;
  server_options.fsync_interval_ms = opts.fsync_interval_ms;
  server_options.wal_segment_bytes = opts.wal_segment_bytes;
  server_options.idle_timeout_ms = opts.idle_timeout_ms;
  server_options.load_shed_high_water = opts.load_shed_high_water;
  server_options.subscriber_queue_capacity =
      opts.subscriber_queue == 0 ? 1 : opts.subscriber_queue;

  convoy::server::ConvoyServer server(server_options);
  if (const convoy::Status started = server.Start(); !started.ok()) {
    std::cerr << "cannot start: " << started << "\n";
    convoy::wal::SetFaultInjector(nullptr);
    return 2;
  }
  // Scraped by run_checks.sh and the e2e harness — keep the format stable.
  std::cout << "listening on " << server.host() << ":" << server.port()
            << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  convoy::Stopwatch uptime;
  while (g_stop == 0) {
    if (opts.max_seconds >= 0 && uptime.ElapsedSeconds() >= opts.max_seconds) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "shutting down\n";
  server.Shutdown();
  convoy::wal::SetFaultInjector(nullptr);

  if (!opts.stats_json.empty()) {
    std::ofstream out(opts.stats_json);
    if (!out) {
      std::cerr << "cannot write " << opts.stats_json << "\n";
      return 2;
    }
    out << server.StatsJson() << "\n";
    std::cout << "wrote " << opts.stats_json << "\n";
  }
  return 0;
}
