#!/usr/bin/env bash
# Tier-1 verification plus a threading determinism smoke — the sequence a CI
# step should run on every push.
#
#   tools/run_checks.sh [build-dir]
#
# 1. configure + build + ctest (the repo's tier-1 verify command);
# 2. generate a small synthetic dataset with convoy_cli;
# 3. run CuTS* and CMC discovery with 1 and 2 worker threads and require
#    byte-identical results (the parallel subsystem's core guarantee).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"

echo "== build =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "== threading determinism smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
CLI="${BUILD_DIR}/convoy_cli"

"${CLI}" --generate carlike --scale 0.1 --seed 99 \
         --output "${SMOKE_DIR}/data.csv" > /dev/null

for algo in "cuts*" cmc; do
  "${CLI}" --input "${SMOKE_DIR}/data.csv" --m 3 --k 60 --e 8.0 \
           --algo "${algo}" --threads 1 --results "${SMOKE_DIR}/t1.csv" \
           > /dev/null
  "${CLI}" --input "${SMOKE_DIR}/data.csv" --m 3 --k 60 --e 8.0 \
           --algo "${algo}" --threads 2 --results "${SMOKE_DIR}/t2.csv" \
           > /dev/null
  if ! diff -q "${SMOKE_DIR}/t1.csv" "${SMOKE_DIR}/t2.csv" > /dev/null; then
    echo "FAIL: ${algo} results differ between --threads 1 and --threads 2"
    exit 1
  fi
  echo "ok: ${algo} identical for --threads 1 and --threads 2"
done

echo "== all checks passed =="
