#!/usr/bin/env bash
# Tier-1 verification plus smoke tests — the sequence a CI step should run
# on every push.
#
#   tools/run_checks.sh [build-dir]
#
# 0. lint: the convoy_lint self-test (every rule must fire on a seeded
#    violation), a repo-wide convoy_lint pass over src/, and — when the
#    binary is available — clang-tidy (.clang-tidy profile) on the .cc
#    files changed vs origin/main;
# 1. configure + build + ctest in the default RelWithDebInfo configuration
#    (the repo's tier-1 verify command), with -DCONVOY_WERROR=ON — all
#    three build types promote warnings to errors here and in CI;
# 2. configure + build + ctest again in Debug — RelWithDebInfo defines
#    NDEBUG, so running BOTH build types ensures the recoverable error
#    model is exercised with and without asserts and an assert-only
#    regression can never hide;
# 3. configure + build + ctest a third time in Release (-O3 -DNDEBUG) —
#    the configuration the performance claims are made in; hot-path
#    parity must hold under full optimization too;
# 3b. TSan smoke: build the thread-focused tests (race_stress, trace,
#    streaming) with -DCONVOY_SANITIZE=thread and run them — the dedicated
#    CI job runs the whole suite under TSan, this leg catches the common
#    races locally first;
# 3c. scalar-kernel leg: build the distance-heavy suites with
#    -DCONVOY_SIMD=OFF and run them — the kernels' compile-time scalar
#    fallback must stay bit-identical to the AVX2 path;
# 4. bench smoke: run the Release bench/scalability and require it to
#    produce a well-formed BENCH_hotpath.json (the machine-readable perf
#    trajectory tracked across PRs);
# 4b. durable-ingest smoke: an fsync-policy sweep (none / interval /
#    every_tick, each against its own WAL-backed daemon) plus a chaos run
#    that SIGKILLs the daemon mid-ingest and requires the recovered
#    closed-convoy events to be bit-identical to an unfaulted local
#    replay — the crash-recovery property, end to end over processes;
# 5. generate a small synthetic dataset with convoy_cli;
# 6. run CuTS* and CMC discovery with 1 and 2 worker threads and require
#    byte-identical results (the parallel subsystem's core guarantee);
# 7. drive convoy_cli's error paths and require the documented exit codes
#    (1 usage, 2 I/O, 3 invalid query, 4 data error);
# 8. smoke the planner: --algo auto --explain must print the chosen
#    algorithm and the resolved delta/lambda;
# 9. smoke the observability surface: --explain-analyze must print
#    measured counters/spans, --trace must emit valid Chrome trace-event
#    JSON (validated against the format with python3 when available), and
#    --report must carry an enabled metrics block.
#
# Before any of that: refuse to run if build artifacts are tracked by git
# (a PR once committed 688 of them; .gitignore's build*/ plus this guard
# keep it from recurring).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
DEBUG_BUILD_DIR="${BUILD_DIR}-debug"
RELEASE_BUILD_DIR="${BUILD_DIR}-release"

echo "== tracked-build-artifact guard =="
# Anchored to build*/ *directories* so a legitimate build.sh/buildspec.yml
# at the root would not trip it.
if git -C "${REPO_ROOT}" ls-files | grep -q '^build[^/]*/'; then
  echo "FAIL: build artifacts are tracked by git:"
  git -C "${REPO_ROOT}" ls-files | grep '^build[^/]*/' | head -10
  echo "(git rm -r --cached them; .gitignore covers build*/)"
  exit 1
fi
echo "ok: no tracked build artifacts"

echo "== lint (convoy_lint self-test + repo-wide pass) =="
if command -v python3 > /dev/null 2>&1; then
  python3 "${REPO_ROOT}/tools/lint/lint_selftest.py"
  python3 "${REPO_ROOT}/tools/lint/convoy_lint.py" --root "${REPO_ROOT}" src
else
  echo "skip: python3 unavailable (CI runs the lint job with python3)"
fi

echo "== configure (RelWithDebInfo) =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCONVOY_WERROR=ON \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build (RelWithDebInfo) =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== ctest (RelWithDebInfo — NDEBUG, asserts compiled out) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "== clang-tidy (changed files; skipped when unavailable) =="
if command -v clang-tidy > /dev/null 2>&1; then
  # Changed .cc files vs the merge base with main (all of src/ when the
  # base cannot be resolved — e.g. a shallow clone).
  TIDY_BASE="$(git -C "${REPO_ROOT}" merge-base HEAD origin/main \
               2> /dev/null || echo "")"
  if [[ -n "${TIDY_BASE}" ]]; then
    mapfile -t TIDY_FILES < <(git -C "${REPO_ROOT}" diff --name-only \
        --diff-filter=d "${TIDY_BASE}" -- 'src/*.cc' 'tools/*.cc')
  else
    mapfile -t TIDY_FILES < <(cd "${REPO_ROOT}" && ls src/*/*.cc)
  fi
  if [[ "${#TIDY_FILES[@]}" -gt 0 ]]; then
    (cd "${REPO_ROOT}" && clang-tidy -p "${BUILD_DIR}" "${TIDY_FILES[@]}")
    echo "ok: clang-tidy clean on ${#TIDY_FILES[@]} file(s)"
  else
    echo "ok: no changed .cc files to tidy"
  fi
else
  echo "skip: clang-tidy unavailable (CI runs it in the lint job)"
fi

echo "== configure (Debug) =="
cmake -B "${DEBUG_BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Debug \
      -DCONVOY_WERROR=ON

echo "== build (Debug) =="
cmake --build "${DEBUG_BUILD_DIR}" -j "$(nproc)"

echo "== ctest (Debug — asserts live) =="
ctest --test-dir "${DEBUG_BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "== configure (Release — the configuration perf claims are made in) =="
cmake -B "${RELEASE_BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release \
      -DCONVOY_WERROR=ON

echo "== build (Release) =="
cmake --build "${RELEASE_BUILD_DIR}" -j "$(nproc)"

echo "== ctest (Release — -O3 -DNDEBUG) =="
ctest --test-dir "${RELEASE_BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "== TSan smoke (race-stress + trace suites under ThreadSanitizer) =="
# The full suite runs under TSan in the dedicated CI job; locally this leg
# builds the thread-focused tests only, so the hot race surfaces (engine
# caches, grid-cache eviction, live trace reads, streaming ticks) are
# verified on every run without tripling the wall time.
TSAN_BUILD_DIR="${BUILD_DIR}-tsan"
cmake -B "${TSAN_BUILD_DIR}" -S "${REPO_ROOT}" -DCONVOY_SANITIZE=thread \
      -DCONVOY_WERROR=ON
cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc)" \
      --target race_stress_test trace_test streaming_test ring_test \
               server_test wal_test recovery_test
TSAN_OPTIONS="suppressions=${REPO_ROOT}/tools/tsan.supp" \
  ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure \
        -R 'race_stress_test|trace_test|streaming_test|ring_test|server_test|wal_test|recovery_test'

echo "== scalar-kernel leg (-DCONVOY_SIMD=OFF, compile-time fallback) =="
# The distance kernels carry a compile-time scalar fallback that must stay
# bit-identical to the AVX2 path; this leg builds the distance-heavy suites
# without AVX2 codegen and runs them (CI mirrors it as a matrix entry).
SCALAR_BUILD_DIR="${BUILD_DIR}-scalar"
cmake -B "${SCALAR_BUILD_DIR}" -S "${REPO_ROOT}" -DCONVOY_SIMD=OFF \
      -DCONVOY_WERROR=ON
cmake --build "${SCALAR_BUILD_DIR}" -j "$(nproc)" \
      --target polyline_parity_test polyline_dbscan_test cuts_test \
               hotpath_parity_test grid_index_test
ctest --test-dir "${SCALAR_BUILD_DIR}" --output-on-failure -R \
  'polyline_parity_test|polyline_dbscan_test|cuts_test|hotpath_parity_test|grid_index_test'

echo "== threading determinism smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
CLI="${BUILD_DIR}/convoy_cli"

echo "== bench smoke (BENCH_hotpath.json produced and well-formed) =="
BENCH_JSON="${SMOKE_DIR}/BENCH_hotpath.json"
"${RELEASE_BUILD_DIR}/bench/scalability" --json "${BENCH_JSON}" > /dev/null
if [[ ! -s "${BENCH_JSON}" ]]; then
  echo "FAIL: bench/scalability did not produce ${BENCH_JSON}"
  exit 1
fi
if command -v python3 > /dev/null 2>&1; then
  python3 - "${BENCH_JSON}" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "convoy-bench-hotpath-v3", doc.get("schema")
results = doc["results"]
assert results, "no results"
for row in results:
    assert {"bench", "n", "threads", "ns_per_op"} <= set(row), row
names = {row["bench"] for row in results}
for needed in ("snapshot_cluster_reference", "snapshot_cluster_csr_arena",
               "cmc_e2e_reference", "cmc_e2e_optimized", "cmc_e2e_traced",
               "cuts_filter_reference", "cuts_filter_soa",
               "cuts_filter_simd", "cuts_star_e2e_optimized"):
    assert needed in names, f"missing bench entry: {needed}"
phases = doc["phases"]
assert phases, "no phases (traced run recorded no spans)"
for row in phases:
    assert {"name", "count", "total_ms"} <= set(row), row
phase_names = {row["name"] for row in phases}
for needed in ("prepare", "execute", "filter.partition", "refine.unit"):
    assert needed in phase_names, f"missing phase: {needed}"
print(f"ok: {len(results)} well-formed results, {len(phases)} phases")
PYEOF
else
  # No python3: at least require the schema marker and one result row.
  grep -q '"schema": "convoy-bench-hotpath-v3"' "${BENCH_JSON}"
  grep -q '"phases"' "${BENCH_JSON}"
  grep -q '"ns_per_op"' "${BENCH_JSON}"
  echo "ok: schema marker and result rows present (python3 unavailable)"
fi
echo "ok: BENCH_hotpath.json produced and well-formed"

"${CLI}" --generate carlike --scale 0.1 --seed 99 \
         --output "${SMOKE_DIR}/data.csv" > /dev/null

for algo in "cuts*" cmc; do
  "${CLI}" --input "${SMOKE_DIR}/data.csv" --m 3 --k 60 --e 8.0 \
           --algo "${algo}" --threads 1 --results "${SMOKE_DIR}/t1.csv" \
           > /dev/null
  "${CLI}" --input "${SMOKE_DIR}/data.csv" --m 3 --k 60 --e 8.0 \
           --algo "${algo}" --threads 2 --results "${SMOKE_DIR}/t2.csv" \
           > /dev/null
  if ! diff -q "${SMOKE_DIR}/t1.csv" "${SMOKE_DIR}/t2.csv" > /dev/null; then
    echo "FAIL: ${algo} results differ between --threads 1 and --threads 2"
    exit 1
  fi
  echo "ok: ${algo} identical for --threads 1 and --threads 2"
done

echo "== CLI error-path smoke (documented exit codes) =="
expect_exit() {
  local want="$1"
  local label="$2"
  shift 2
  local got=0
  "$@" > /dev/null 2>&1 || got=$?
  if [[ "${got}" != "${want}" ]]; then
    echo "FAIL: ${label}: expected exit ${want}, got ${got}"
    exit 1
  fi
  echo "ok: ${label} -> exit ${want}"
}

expect_exit 1 "unknown algorithm" \
  "${CLI}" --input "${SMOKE_DIR}/data.csv" --algo nonsense
expect_exit 2 "missing input file" \
  "${CLI}" --input "${SMOKE_DIR}/does_not_exist.csv"
expect_exit 3 "invalid query (m = 1)" \
  "${CLI}" --input "${SMOKE_DIR}/data.csv" --m 1 --k 60 --e 8.0
expect_exit 3 "invalid query (e = 0)" \
  "${CLI}" --input "${SMOKE_DIR}/data.csv" --m 3 --k 60 --e 0
printf 'garbage\nmore,garbage\n' > "${SMOKE_DIR}/garbage.csv"
expect_exit 4 "garbage-only input" \
  "${CLI}" --input "${SMOKE_DIR}/garbage.csv" --m 3 --k 60 --e 8.0
printf '0,0,nan,1\n0,1,1,1\n0,2,2,2\n1,0,0,0\n' > "${SMOKE_DIR}/nanrow.csv"
expect_exit 0 "NaN row skipped, rest discovered" \
  "${CLI}" --input "${SMOKE_DIR}/nanrow.csv" --m 2 --k 2 --e 8.0

echo "== planner EXPLAIN smoke =="
EXPLAIN_OUT="$("${CLI}" --input "${SMOKE_DIR}/data.csv" --m 3 --k 60 --e 8.0 \
                        --algo auto --explain)"
for needle in "algorithm:" "delta:" "lambda:"; do
  if ! grep -q "${needle}" <<< "${EXPLAIN_OUT}"; then
    echo "FAIL: --algo auto --explain output lacks '${needle}':"
    echo "${EXPLAIN_OUT}"
    exit 1
  fi
done
echo "ok: --algo auto --explain prints the chosen algorithm and parameters"

echo "== observability smoke (EXPLAIN ANALYZE, --trace, --report metrics) =="
ANALYZE_OUT="$("${CLI}" --input "${SMOKE_DIR}/data.csv" --m 3 --k 60 --e 8.0 \
                        --algo "cuts*" --explain-analyze \
                        --trace "${SMOKE_DIR}/trace.json" \
                        --report "${SMOKE_DIR}/report.json")"
for needle in "analyze" "dbscan.points_scanned" "filter.partition"; do
  if ! grep -q "${needle}" <<< "${ANALYZE_OUT}"; then
    echo "FAIL: --explain-analyze output lacks '${needle}':"
    echo "${ANALYZE_OUT}"
    exit 1
  fi
done
echo "ok: --explain-analyze prints measured counters and spans"

if [[ ! -s "${SMOKE_DIR}/trace.json" ]]; then
  echo "FAIL: --trace did not produce trace.json"
  exit 1
fi
if command -v python3 > /dev/null 2>&1; then
  python3 - "${SMOKE_DIR}/trace.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
# Chrome trace-event JSON Object Format: {"traceEvents": [...]}. Each
# event needs ph + pid/tid, "X" complete events need name/ts/dur, and
# every recording thread gets an "M" thread_name metadata record.
events = doc["traceEvents"] if isinstance(doc, dict) else doc
assert isinstance(events, list) and events, "empty trace"
complete = [e for e in events if e.get("ph") == "X"]
meta = [e for e in events if e.get("ph") == "M"]
assert complete, "no complete (ph=X) span events"
assert any(e.get("name") == "thread_name" for e in meta), "no track names"
for e in complete:
    assert {"name", "ts", "dur", "pid", "tid"} <= set(e), e
names = {e["name"] for e in complete}
for needed in ("prepare", "execute"):
    assert needed in names, f"missing span: {needed}"
print(f"ok: {len(complete)} spans on"
      f" {len({e['tid'] for e in complete})} track(s)")
PYEOF
  python3 - "${SMOKE_DIR}/report.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
metrics = doc["metrics"]
assert metrics["enabled"] is True, "metrics block disabled despite --trace"
assert metrics["counters"]["dbscan.points_scanned"] > 0, metrics["counters"]
assert metrics["spans"], "no span aggregates in report"
print("ok: --report carries an enabled metrics block")
PYEOF
else
  grep -q '"ph":"X"' "${SMOKE_DIR}/trace.json"
  grep -q '"thread_name"' "${SMOKE_DIR}/trace.json"
  grep -q '"metrics":{"enabled":true' "${SMOKE_DIR}/report.json"
  echo "ok: trace and report markers present (python3 unavailable)"
fi
echo "ok: --trace emits Perfetto-loadable Chrome trace-event JSON"

echo "== server smoke (daemon + loadgen burst + BENCH_server.json) =="
SERVER_LOG="${SMOKE_DIR}/serverd.log"
SERVER_STATS="${SMOKE_DIR}/server_stats.json"
BENCH_SERVER_JSON="${SMOKE_DIR}/BENCH_server.json"
# --max-seconds is a watchdog only; the leg SIGTERMs the daemon long before.
"${RELEASE_BUILD_DIR}/convoy_serverd" --port 0 --max-seconds 300 \
    --stats-json "${SERVER_STATS}" > "${SERVER_LOG}" 2>&1 &
SERVER_PID=$!
SERVER_PORT=""
for _ in $(seq 100); do
  SERVER_PORT="$(grep -oE 'listening on 127\.0\.0\.1:[0-9]+' \
                 "${SERVER_LOG}" 2> /dev/null | grep -oE '[0-9]+$' || true)"
  [[ -n "${SERVER_PORT}" ]] && break
  sleep 0.1
done
if [[ -z "${SERVER_PORT}" ]]; then
  echo "FAIL: convoy_serverd never reported its port:"
  cat "${SERVER_LOG}"
  exit 1
fi
echo "ok: daemon listening on port ${SERVER_PORT}"

# A bounded burst at the acceptance scale (8 ingest + 4 query clients),
# with --verify: subscriber events must be bit-identical to a local
# StreamingCmc replay of the same feed.
"${RELEASE_BUILD_DIR}/convoy_loadgen" --port "${SERVER_PORT}" \
    --ingest 8 --query 4 --ticks 12 --objects 24 --batch-rows 8 \
    --verify --json "${BENCH_SERVER_JSON}"
echo "ok: loadgen burst verified against local replay"

kill -TERM "${SERVER_PID}"
SERVER_EXIT=0
wait "${SERVER_PID}" || SERVER_EXIT=$?
if [[ "${SERVER_EXIT}" != 0 ]]; then
  echo "FAIL: convoy_serverd exit ${SERVER_EXIT} on SIGTERM (want 0):"
  cat "${SERVER_LOG}"
  exit 1
fi
echo "ok: daemon shut down cleanly on SIGTERM"

if command -v python3 > /dev/null 2>&1; then
  python3 - "${BENCH_SERVER_JSON}" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "convoy-bench-server-v2", doc.get("schema")
config = doc["config"]
assert config["ingest_clients"] >= 8 and config["query_clients"] >= 4
assert config["fsync"] in ("none", "interval", "every_tick"), config
ingest = doc["ingest"]
assert ingest["rows_accepted"] > 0 and ingest["rows_per_sec"] > 0
sub = doc["subscription"]
assert sub["events"] > 0 and sub["latency_ms"]["count"] > 0
assert "p50" in sub["latency_ms"] and "p99" in sub["latency_ms"]
query = doc["query"]
assert query["latency_ms"]["count"] > 0
assert "p50" in query["latency_ms"] and "p99" in query["latency_ms"]
verify = doc["verify"]
assert verify["enabled"] is True
assert verify["streams_ok"] == verify["streams_total"] == \
    config["ingest_clients"]
# v2 carries the durability sections even when this run used neither.
assert isinstance(doc["fsync_sweep"], list)
assert doc["chaos"]["enabled"] in (True, False)
print(f"ok: {ingest['rows_accepted']} rows at"
      f" {ingest['rows_per_sec']:.0f} rows/s,"
      f" {verify['streams_ok']}/{verify['streams_total']} streams verified")
PYEOF
  python3 - "${SERVER_STATS}" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "convoy-server-stats-v1", doc.get("schema")
counters = doc["metrics"]["counters"]
assert counters["server.batches_accepted"] > 0, counters
assert counters["server.events_emitted"] > 0, counters
assert counters["server.active_sessions_max"] >= 8, counters
print("ok: stats dump carries the server.* counters")
PYEOF
else
  grep -q '"schema":"convoy-bench-server-v2"' "${BENCH_SERVER_JSON}"
  grep -q '"schema":"convoy-server-stats-v1"' "${SERVER_STATS}"
  echo "ok: schema markers present (python3 unavailable)"
fi

echo "== durable-ingest smoke (fsync sweep over WAL-backed daemons) =="
SWEEP_JSON="${SMOKE_DIR}/BENCH_server_sweep.json"
"${RELEASE_BUILD_DIR}/convoy_loadgen" \
    --serverd "${RELEASE_BUILD_DIR}/convoy_serverd" --sweep-fsync \
    --wal-root "${SMOKE_DIR}/sweep-wal" \
    --ingest 2 --query 1 --ticks 10 --objects 16 --verify \
    --json "${SWEEP_JSON}" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "${SWEEP_JSON}" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
sweep = doc["fsync_sweep"]
assert {row["policy"] for row in sweep} == \
    {"none", "interval", "every_tick"}, sweep
for row in sweep:
    assert row["ok"] is True, row
    assert row["rows_accepted"] > 0 and row["rows_per_sec"] > 0, row
print("ok: all three fsync policies ingest and verify")
PYEOF
else
  grep -q '"policy":"every_tick"' "${SWEEP_JSON}"
  echo "ok: sweep rows present (python3 unavailable)"
fi

echo "== crash-recovery smoke (chaos: SIGKILL mid-ingest, verify replay) =="
CHAOS_JSON="${SMOKE_DIR}/BENCH_server_chaos.json"
# Kills the daemon mid-ingest (twice), restarts it on the same WAL, and
# exits 3 unless every recovered stream's closed-convoy events are
# bit-identical to an unfaulted local replay — the PR's durability bar.
"${RELEASE_BUILD_DIR}/convoy_loadgen" \
    --serverd "${RELEASE_BUILD_DIR}/convoy_serverd" --chaos --kills 2 \
    --wal-root "${SMOKE_DIR}/chaos-wal" \
    --ingest 2 --ticks 40 --objects 16 --json "${CHAOS_JSON}"
if command -v python3 > /dev/null 2>&1; then
  python3 - "${CHAOS_JSON}" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
chaos = doc["chaos"]
assert chaos["enabled"] is True
assert chaos["kills"] >= 1, chaos
assert chaos["streams_ok"] == chaos["streams_total"] == 2, chaos
print(f"ok: {chaos['kills']} kills, {chaos['resumes']} resumes,"
      f" {chaos['streams_ok']}/{chaos['streams_total']} streams"
      " bit-identical after recovery")
PYEOF
else
  grep -q '"chaos":{"enabled":true' "${CHAOS_JSON}"
  echo "ok: chaos verdict present (python3 unavailable)"
fi

echo "== CLI --serve smoke (same server embedded in convoy_cli) =="
CLI_SERVE_LOG="${SMOKE_DIR}/cli_serve.log"
"${CLI}" --serve --port 0 --max-seconds 300 > "${CLI_SERVE_LOG}" 2>&1 &
CLI_SERVE_PID=$!
CLI_SERVE_PORT=""
for _ in $(seq 100); do
  CLI_SERVE_PORT="$(grep -oE 'listening on 127\.0\.0\.1:[0-9]+' \
                    "${CLI_SERVE_LOG}" 2> /dev/null \
                    | grep -oE '[0-9]+$' || true)"
  [[ -n "${CLI_SERVE_PORT}" ]] && break
  sleep 0.1
done
if [[ -z "${CLI_SERVE_PORT}" ]]; then
  echo "FAIL: convoy_cli --serve never reported its port:"
  cat "${CLI_SERVE_LOG}"
  exit 1
fi
"${RELEASE_BUILD_DIR}/convoy_loadgen" --port "${CLI_SERVE_PORT}" \
    --ingest 2 --query 1 --ticks 6 --objects 12 --verify > /dev/null
kill -TERM "${CLI_SERVE_PID}"
CLI_SERVE_EXIT=0
wait "${CLI_SERVE_PID}" || CLI_SERVE_EXIT=$?
if [[ "${CLI_SERVE_EXIT}" != 0 ]]; then
  echo "FAIL: convoy_cli --serve exit ${CLI_SERVE_EXIT} on SIGTERM (want 0)"
  exit 1
fi
echo "ok: convoy_cli --serve serves the protocol and shuts down cleanly"

echo "== all checks passed =="
