// convoy_loadgen — concurrent load generator for convoy_serverd.
//
// Usage:
//   convoy_loadgen --port P [--host 127.0.0.1] [--ingest 8] [--query 4]
//                  [--ticks 40] [--objects 32] [--batch-rows 12]
//                  [--window 4] [--seed 7] [--carry-forward 2]
//                  [--json BENCH_server.json] [--verify]
//
// Spawns N ingest clients (each: one connection driving one ingest stream
// fed by datagen/stream_feed.h, plus one subscriber connection receiving
// the stream's convoy events) and M query clients issuing ad-hoc planned
// queries against the live streams. Batches are pipelined up to --window
// unacked frames; a retryable flow-control NAK (ring full) backs off and
// resends, so the accepted row set is exactly the generated feed.
//
// --verify replays every feed through a local StreamingCmc and requires
// the subscriber's closed-convoy events to match bit-identically — the
// server's network/ring/worker path must not change the answer.
//
// --json writes a BENCH_server.json ("convoy-bench-server-v1"): ingest
// throughput, subscription latency quantiles, query latency quantiles,
// and the verification verdict. Exit 0 on full success, 1 on usage
// errors, 2 on connection failures, 3 on NAK/verify failures.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "convoy/convoy.h"

namespace {

using convoy::server::AckMsg;
using convoy::server::ConvoyClient;
using convoy::server::EventKind;
using convoy::server::EventMsg;
using convoy::server::PositionReport;

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t ingest = 8;
  size_t query = 4;
  convoy::Tick ticks = 40;
  size_t objects = 32;
  size_t batch_rows = 12;
  size_t window = 4;
  uint64_t seed = 7;
  convoy::Tick carry_forward = 2;
  std::string json_out;
  bool verify = false;
};

bool ParseArgs(int argc, char** argv, LoadgenOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      opts->host = value;
    } else if (arg == "--port" && (value = next())) {
      opts->port = static_cast<uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--ingest" && (value = next())) {
      opts->ingest = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--query" && (value = next())) {
      opts->query = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--ticks" && (value = next())) {
      opts->ticks = std::strtoll(value, nullptr, 10);
    } else if (arg == "--objects" && (value = next())) {
      opts->objects = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--batch-rows" && (value = next())) {
      opts->batch_rows =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--window" && (value = next())) {
      opts->window = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--seed" && (value = next())) {
      opts->seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--carry-forward" && (value = next())) {
      opts->carry_forward = std::strtoll(value, nullptr, 10);
    } else if (arg == "--json" && (value = next())) {
      opts->json_out = value;
    } else if (arg == "--verify") {
      opts->verify = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
    if (value == nullptr && arg.rfind("--", 0) == 0 && arg != "--verify" &&
        arg != "--help") {
      return false;
    }
  }
  return opts->port != 0;
}

std::vector<PositionReport> ToWire(const std::vector<convoy::FeedRow>& rows) {
  std::vector<PositionReport> wire;
  wire.reserve(rows.size());
  for (const convoy::FeedRow& row : rows) {
    wire.push_back(PositionReport{row.id, row.pos.x, row.pos.y});
  }
  return wire;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything one ingest stream produces, written by its ingest worker and
/// subscriber thread, read by main after the joins.
struct StreamRun {
  uint64_t stream_id = 0;
  convoy::StreamFeed feed;

  // Written by the ingest thread right before SendEndTick(t); read by the
  // subscriber when the kTick event for t arrives (which the send
  // happens-before in real time; atomics keep the access race-free).
  std::vector<std::atomic<int64_t>> endtick_send_us;

  // Subscriber-thread results (read after join).
  std::vector<double> sub_latency_ms;
  std::vector<convoy::Convoy> closed_events;
  size_t events_received = 0;
  bool stream_end_seen = false;

  // Ingest-thread results.
  uint64_t rows_accepted = 0;
  uint64_t batches_sent = 0;
  uint64_t retry_naks = 0;
  bool ok = true;
  std::string error;

  explicit StreamRun(size_t ticks) : endtick_send_us(ticks) {}
};

void SubscriberLoop(const LoadgenOptions& opts, StreamRun* run,
                    ConvoyClient* client) {
  for (;;) {
    convoy::StatusOr<EventMsg> event = client->NextEvent();
    if (!event.ok()) return;  // connection closed (normal after kStreamEnd)
    ++run->events_received;
    const auto kind = static_cast<EventKind>(event->kind);
    if (kind == EventKind::kTick) {
      const auto tick = static_cast<size_t>(event->tick);
      if (tick < run->endtick_send_us.size()) {
        const int64_t sent = run->endtick_send_us[tick].load();
        if (sent > 0) {
          run->sub_latency_ms.push_back(NowMs() -
                                        static_cast<double>(sent) / 1000.0);
        }
      }
    } else if (kind == EventKind::kConvoyClosed) {
      run->closed_events.push_back(event->convoy);
    } else if (kind == EventKind::kStreamEnd) {
      run->stream_end_seen = true;
      return;
    }
  }
  (void)opts;
}

/// Sends one frame and awaits its ack, backing off and resending while the
/// server NAKs with retryable=1 (ring full). Returns the final ack.
template <typename SendFn>
convoy::StatusOr<AckMsg> SendWithFlowControl(ConvoyClient& client,
                                             SendFn send, StreamRun* run) {
  for (;;) {
    convoy::StatusOr<AckMsg> ack = client.AwaitAck(send());
    if (!ack.ok()) return ack;
    if (ack->code == 0 || ack->retryable == 0) return ack;
    ++run->retry_naks;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void IngestLoop(const LoadgenOptions& opts, StreamRun* run) {
  auto connected = ConvoyClient::Connect(opts.host, opts.port);
  if (!connected.ok()) {
    run->ok = false;
    run->error = "connect: " + connected.status().ToString();
    return;
  }
  std::unique_ptr<ConvoyClient> client = std::move(*connected);

  const convoy::Status begun =
      client->IngestBegin(run->stream_id, run->feed.query, opts.carry_forward);
  if (!begun.ok()) {
    run->ok = false;
    run->error = "IngestBegin: " + begun.ToString();
    return;
  }

  // The subscriber rides a second connection, subscribed before the first
  // batch so it observes every event of the stream.
  auto sub_connected = ConvoyClient::Connect(opts.host, opts.port);
  if (!sub_connected.ok()) {
    run->ok = false;
    run->error = "subscriber connect: " + sub_connected.status().ToString();
    return;
  }
  std::unique_ptr<ConvoyClient> subscriber = std::move(*sub_connected);
  if (const convoy::Status s = subscriber->Subscribe(run->stream_id);
      !s.ok()) {
    run->ok = false;
    run->error = "Subscribe: " + s.ToString();
    return;
  }
  convoy::ServiceThread sub_thread("loadgen-subscriber", [&] {
    SubscriberLoop(opts, run, subscriber.get());
  });

  for (const convoy::FeedTick& tick : run->feed.ticks) {
    // Pipeline batches up to the window, then drain; a tick boundary is a
    // barrier so a retried batch can never land after its EndTick.
    std::vector<uint64_t> outstanding;
    std::vector<size_t> outstanding_batch;
    const auto await_front = [&]() -> bool {
      convoy::StatusOr<AckMsg> ack = client->AwaitAck(outstanding.front());
      const size_t batch_idx = outstanding_batch.front();
      outstanding.erase(outstanding.begin());
      outstanding_batch.erase(outstanding_batch.begin());
      if (!ack.ok()) {
        run->ok = false;
        run->error = "AwaitAck: " + ack.status().ToString();
        return false;
      }
      if (ack->code != 0 && ack->retryable != 0) {
        // Flow control: resend the same batch (still before EndTick).
        ++run->retry_naks;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        outstanding.push_back(
            client->SendBatch(tick.tick, ToWire(tick.batches[batch_idx])));
        outstanding_batch.push_back(batch_idx);
        return true;
      }
      if (ack->code != 0) {
        run->ok = false;
        run->error = "batch NAK: " + ack->message;
        return false;
      }
      run->rows_accepted += ack->accepted;
      return true;
    };

    for (size_t b = 0; b < tick.batches.size(); ++b) {
      outstanding.push_back(
          client->SendBatch(tick.tick, ToWire(tick.batches[b])));
      outstanding_batch.push_back(b);
      ++run->batches_sent;
      if (outstanding.size() >= std::max<size_t>(1, opts.window) &&
          !await_front()) {
        break;
      }
    }
    while (run->ok && !outstanding.empty()) {
      if (!await_front()) break;
    }
    if (!run->ok) break;

    const auto t = static_cast<size_t>(tick.tick);
    if (t < run->endtick_send_us.size()) {
      run->endtick_send_us[t].store(
          static_cast<int64_t>(NowMs() * 1000.0));
    }
    const convoy::StatusOr<AckMsg> ack = SendWithFlowControl(
        *client, [&] { return client->SendEndTick(tick.tick); }, run);
    if (!ack.ok() || ack->code != 0) {
      run->ok = false;
      run->error = "EndTick: " +
                   (ack.ok() ? ack->message : ack.status().ToString());
      break;
    }
  }

  if (run->ok) {
    const convoy::StatusOr<AckMsg> ack = SendWithFlowControl(
        *client, [&] { return client->SendFinish(); }, run);
    if (!ack.ok() || ack->code != 0) {
      run->ok = false;
      run->error = "Finish: " +
                   (ack.ok() ? ack->message : ack.status().ToString());
    }
  }

  if (!run->ok) {
    // No kStreamEnd will ever come — wake the subscriber out of its read.
    subscriber->ShutdownSocket();
  }
  sub_thread.Join();
}

void QueryLoop(const LoadgenOptions& opts,
               const std::vector<std::unique_ptr<StreamRun>>& runs,
               size_t worker, std::atomic<bool>* stop,
               std::vector<double>* latencies_ms, std::atomic<bool>* ok) {
  auto connected = ConvoyClient::Connect(opts.host, opts.port);
  if (!connected.ok()) {
    ok->store(false);
    return;
  }
  std::unique_ptr<ConvoyClient> client = std::move(*connected);
  size_t round = 0;
  while (!stop->load()) {
    const StreamRun& target = *runs[(worker + round) % runs.size()];
    ++round;
    const double start = NowMs();
    const auto result =
        client->Query(target.stream_id, target.feed.query, /*algo=*/0);
    if (!result.ok()) {
      ok->store(false);
      return;
    }
    // kNotFound races with IngestBegin at startup — benign; any other
    // error code is a real failure.
    if (result->code != 0 &&
        result->code != static_cast<uint8_t>(convoy::StatusCode::kNotFound)) {
      ok->store(false);
      return;
    }
    if (result->code == 0) latencies_ms->push_back(NowMs() - start);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Replays a feed through a local StreamingCmc; returns the closed convoys
/// in emission order — the sequence the server's subscriber must match.
std::vector<convoy::Convoy> LocalReplay(const convoy::StreamFeed& feed,
                                        convoy::Tick carry_forward) {
  convoy::StreamingCmc::Options options;
  options.carry_forward_ticks = carry_forward;
  convoy::StreamingCmc stream(feed.query, options);
  std::vector<convoy::Convoy> closed;
  for (const convoy::FeedTick& tick : feed.ticks) {
    stream.BeginTick(tick.tick).IgnoreError();
    for (const auto& batch : tick.batches) {
      for (const convoy::FeedRow& row : batch) {
        stream.Report(row.id, row.pos).IgnoreError();
      }
    }
    auto result = stream.EndTick();
    if (result.ok()) {
      closed.insert(closed.end(), result->begin(), result->end());
    }
  }
  auto final_result = stream.Finish();
  if (final_result.ok()) {
    closed.insert(closed.end(), final_result->begin(), final_result->end());
  }
  return closed;
}

void WriteQuantiles(std::ostream& out, std::vector<double> values) {
  out << "{\"count\":" << values.size();
  if (!values.empty()) {
    out << ",\"p50\":" << convoy::Quantile(values, 0.50)
        << ",\"p99\":" << convoy::Quantile(std::move(values), 0.99);
  }
  out << "}";
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::cout
        << "convoy_loadgen — load generator for convoy_serverd\n"
           "  convoy_loadgen --port P [--host H] [--ingest N] [--query M]\n"
           "                 [--ticks T] [--objects O] [--batch-rows B]\n"
           "                 [--window W] [--seed S] [--carry-forward C]\n"
           "                 [--json out.json] [--verify]\n";
    return argc > 1 ? 1 : 0;
  }
  if (opts.ingest == 0) {
    std::cerr << "--ingest must be >= 1\n";
    return 1;
  }

  convoy::StreamFeedConfig config;
  config.num_objects = opts.objects;
  config.ticks = opts.ticks;
  config.batch_rows = opts.batch_rows;
  config.dropout = 0.05;
  config.leave_prob = 0.02;
  config.rejoin_prob = 0.3;

  std::vector<std::unique_ptr<StreamRun>> runs;
  runs.reserve(opts.ingest);
  for (size_t i = 0; i < opts.ingest; ++i) {
    auto run = std::make_unique<StreamRun>(
        static_cast<size_t>(std::max<convoy::Tick>(opts.ticks, 0)));
    run->stream_id = i + 1;
    run->feed = convoy::GenerateStreamFeed(config, opts.seed + i);
    runs.push_back(std::move(run));
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> queries_ok{true};
  std::vector<std::vector<double>> query_latencies(opts.query);

  const double ingest_start = NowMs();
  {
    std::vector<convoy::ServiceThread> workers;
    workers.reserve(opts.ingest + opts.query);
    for (size_t i = 0; i < opts.ingest; ++i) {
      StreamRun* run = runs[i].get();
      workers.emplace_back("loadgen-ingest",
                           [&opts, run] { IngestLoop(opts, run); });
    }
    for (size_t j = 0; j < opts.query; ++j) {
      std::vector<double>* lat = &query_latencies[j];
      workers.emplace_back("loadgen-query", [&, j, lat] {
        QueryLoop(opts, runs, j, &stop, lat, &queries_ok);
      });
    }
    // Ingest workers are the first opts.ingest entries; join them, then
    // stop the query workers (joined by the vector's destructor).
    for (size_t i = 0; i < opts.ingest; ++i) workers[i].Join();
    stop.store(true);
  }
  const double ingest_seconds = (NowMs() - ingest_start) / 1000.0;

  uint64_t rows_accepted = 0;
  uint64_t batches = 0;
  uint64_t retry_naks = 0;
  size_t events = 0;
  std::vector<double> sub_latency_ms;
  bool ingest_ok = true;
  for (const auto& run : runs) {
    rows_accepted += run->rows_accepted;
    batches += run->batches_sent;
    retry_naks += run->retry_naks;
    events += run->events_received;
    sub_latency_ms.insert(sub_latency_ms.end(), run->sub_latency_ms.begin(),
                          run->sub_latency_ms.end());
    if (!run->ok || !run->stream_end_seen) {
      ingest_ok = false;
      std::cerr << "stream " << run->stream_id << " failed: "
                << (run->error.empty() ? "no kStreamEnd event" : run->error)
                << "\n";
    }
  }
  std::vector<double> query_ms;
  for (const auto& lat : query_latencies) {
    query_ms.insert(query_ms.end(), lat.begin(), lat.end());
  }

  size_t verified_ok = 0;
  if (opts.verify) {
    for (const auto& run : runs) {
      const std::vector<convoy::Convoy> expected =
          LocalReplay(run->feed, opts.carry_forward);
      if (expected == run->closed_events) {
        ++verified_ok;
      } else {
        std::cerr << "verify FAILED for stream " << run->stream_id
                  << ": expected " << expected.size()
                  << " closed convoy event(s), got "
                  << run->closed_events.size() << "\n";
      }
    }
  }

  const double rows_per_sec =
      ingest_seconds > 0 ? static_cast<double>(rows_accepted) / ingest_seconds
                         : 0.0;
  std::cout << "ingest: " << rows_accepted << " rows in " << ingest_seconds
            << " s (" << rows_per_sec << " rows/s), " << batches
            << " batches, " << retry_naks << " flow-control retries\n"
            << "subscription: " << events << " events, "
            << sub_latency_ms.size() << " tick latency samples\n"
            << "queries: " << query_ms.size() << " completed\n";
  if (opts.verify) {
    std::cout << "verify: " << verified_ok << "/" << runs.size()
              << " streams bit-identical to local replay\n";
  }

  if (!opts.json_out.empty()) {
    std::ofstream out(opts.json_out);
    if (!out) {
      std::cerr << "cannot write " << opts.json_out << "\n";
      return 2;
    }
    out << "{\"schema\":\"convoy-bench-server-v1\","
        << "\"config\":{\"ingest_clients\":" << opts.ingest
        << ",\"query_clients\":" << opts.query << ",\"ticks\":" << opts.ticks
        << ",\"objects\":" << opts.objects << ",\"batch_rows\":"
        << opts.batch_rows << ",\"window\":" << opts.window
        << ",\"seed\":" << opts.seed << "},"
        << "\"ingest\":{\"rows_accepted\":" << rows_accepted
        << ",\"batches\":" << batches << ",\"retryable_naks\":" << retry_naks
        << ",\"seconds\":" << ingest_seconds
        << ",\"rows_per_sec\":" << rows_per_sec << "},"
        << "\"subscription\":{\"events\":" << events << ",\"latency_ms\":";
    WriteQuantiles(out, sub_latency_ms);
    out << "},\"query\":{\"latency_ms\":";
    WriteQuantiles(out, query_ms);
    out << "},\"verify\":{\"enabled\":" << (opts.verify ? "true" : "false")
        << ",\"streams_ok\":" << verified_ok
        << ",\"streams_total\":" << runs.size() << "}}\n";
    std::cout << "wrote " << opts.json_out << "\n";
  }

  if (!ingest_ok || !queries_ok.load()) return 3;
  if (opts.verify && verified_ok != runs.size()) return 3;
  return 0;
}
