// convoy_loadgen — concurrent load generator and chaos harness for
// convoy_serverd.
//
// Usage:
//   convoy_loadgen --port P [--host 127.0.0.1] [--ingest 8] [--query 4]
//                  [--ticks 40] [--objects 32] [--batch-rows 12]
//                  [--window 4] [--seed 7] [--carry-forward 2]
//                  [--deadline-ms 10000] [--json BENCH_server.json]
//                  [--verify]
//   convoy_loadgen --serverd PATH --sweep-fsync [--wal-root DIR] [...]
//   convoy_loadgen --serverd PATH --chaos [--kills 3] [--fsync none]
//                  [--wal-root DIR] [...]
//
// Load mode (--port): spawns N ingest clients (each: one connection
// driving one ingest stream fed by datagen/stream_feed.h, plus one
// subscriber connection receiving the stream's convoy events) and M query
// clients issuing ad-hoc planned queries against the live streams.
// Batches are pipelined up to --window unacked frames; a retryable
// flow-control NAK (ring full / load shed) backs off and resends, so the
// accepted row set is exactly the generated feed. --verify replays every
// feed through a local StreamingCmc and requires the subscriber's
// closed-convoy events to match bit-identically.
//
// Sweep mode (--serverd --sweep-fsync): spawns its own daemon once per
// WAL fsync policy (none, interval, every_tick), runs the load against
// each, and reports per-policy ingest throughput — the durability-cost
// curve of README "Durability & fault tolerance".
//
// Chaos mode (--serverd --chaos): spawns the daemon with the WAL and the
// seeded fault injector on, drives every stream with sequential
// (window=1) sends, and SIGKILLs + restarts the daemon at seeded points
// mid-ingest. Clients reconnect, resume from the IngestBegin ack's
// resume_seq (resent overlap is absorbed as duplicate acks), and after
// the final restart the recovered closed-convoy history — fetched with a
// replay_closed subscription and deduped by event_index — must match an
// unfaulted local replay bit-identically, and an ad-hoc query against the
// recovered stream must succeed. This is the end-to-end proof of the
// crash-recovery invariant: acked ingest is never lost, never
// double-applied.
//
// --json writes BENCH_server.json ("convoy-bench-server-v2"): ingest
// throughput, subscription/query latency quantiles, the verification
// verdict, the fsync sweep rows, and the chaos verdict. Exit 0 on full
// success, 1 on usage errors, 2 on connection/spawn failures, 3 on
// NAK/verify failures.

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "convoy/convoy.h"

namespace {

using convoy::server::AckMsg;
using convoy::server::ClientOptions;
using convoy::server::ConvoyClient;
using convoy::server::EventKind;
using convoy::server::EventMsg;
using convoy::server::PositionReport;

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t ingest = 8;
  size_t query = 4;
  convoy::Tick ticks = 40;
  size_t objects = 32;
  size_t batch_rows = 12;
  size_t window = 4;
  uint64_t seed = 7;
  convoy::Tick carry_forward = 2;
  uint32_t deadline_ms = 10000;
  std::string json_out;
  bool verify = false;

  // Spawn modes: --serverd names the daemon binary; loadgen owns its
  // lifecycle (including killing it, in chaos mode).
  std::string serverd;
  std::string wal_root = ".loadgen-wal";
  std::string fsync = "none";
  bool sweep_fsync = false;
  bool chaos = false;
  size_t kills = 3;
};

bool ParseArgs(int argc, char** argv, LoadgenOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      opts->host = value;
    } else if (arg == "--port" && (value = next())) {
      opts->port = static_cast<uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--ingest" && (value = next())) {
      opts->ingest = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--query" && (value = next())) {
      opts->query = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--ticks" && (value = next())) {
      opts->ticks = std::strtoll(value, nullptr, 10);
    } else if (arg == "--objects" && (value = next())) {
      opts->objects = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--batch-rows" && (value = next())) {
      opts->batch_rows =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--window" && (value = next())) {
      opts->window = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--seed" && (value = next())) {
      opts->seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--carry-forward" && (value = next())) {
      opts->carry_forward = std::strtoll(value, nullptr, 10);
    } else if (arg == "--deadline-ms" && (value = next())) {
      opts->deadline_ms =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--json" && (value = next())) {
      opts->json_out = value;
    } else if (arg == "--serverd" && (value = next())) {
      opts->serverd = value;
    } else if (arg == "--wal-root" && (value = next())) {
      opts->wal_root = value;
    } else if (arg == "--fsync" && (value = next())) {
      opts->fsync = value;
    } else if (arg == "--kills" && (value = next())) {
      opts->kills = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--verify") {
      opts->verify = true;
    } else if (arg == "--sweep-fsync") {
      opts->sweep_fsync = true;
    } else if (arg == "--chaos") {
      opts->chaos = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
    if (value == nullptr && arg.rfind("--", 0) == 0 && arg != "--verify" &&
        arg != "--sweep-fsync" && arg != "--chaos" && arg != "--help") {
      return false;
    }
  }
  return true;
}

ClientOptions MakeClientOptions(const LoadgenOptions& opts, uint64_t salt) {
  ClientOptions options;
  options.deadline_ms = opts.deadline_ms;
  options.jitter_seed = opts.seed * 0x9e3779b97f4a7c15ULL + salt;
  return options;
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<PositionReport> ToWire(const std::vector<convoy::FeedRow>& rows) {
  std::vector<PositionReport> wire;
  wire.reserve(rows.size());
  for (const convoy::FeedRow& row : rows) {
    wire.push_back(PositionReport{row.id, row.pos.x, row.pos.y});
  }
  return wire;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything one ingest stream produces, written by its ingest worker and
/// subscriber thread, read by main after the joins.
struct StreamRun {
  uint64_t stream_id = 0;
  convoy::StreamFeed feed;

  // Written by the ingest thread right before SendEndTick(t); read by the
  // subscriber when the kTick event for t arrives (which the send
  // happens-before in real time; atomics keep the access race-free).
  std::vector<std::atomic<int64_t>> endtick_send_us;

  // Subscriber-thread results (read after join).
  std::vector<double> sub_latency_ms;
  std::vector<convoy::Convoy> closed_events;
  size_t events_received = 0;
  bool stream_end_seen = false;

  // Ingest-thread results.
  uint64_t rows_accepted = 0;
  uint64_t batches_sent = 0;
  uint64_t retry_naks = 0;
  bool ok = true;
  std::string error;

  explicit StreamRun(size_t ticks) : endtick_send_us(ticks) {}
};

void SubscriberLoop(const LoadgenOptions& opts, StreamRun* run,
                    ConvoyClient* client) {
  for (;;) {
    convoy::StatusOr<EventMsg> event = client->NextEvent();
    if (!event.ok()) return;  // connection closed (normal after kStreamEnd)
    ++run->events_received;
    const auto kind = static_cast<EventKind>(event->kind);
    if (kind == EventKind::kTick) {
      const auto tick = static_cast<size_t>(event->tick);
      if (tick < run->endtick_send_us.size()) {
        const int64_t sent = run->endtick_send_us[tick].load();
        if (sent > 0) {
          run->sub_latency_ms.push_back(NowMs() -
                                        static_cast<double>(sent) / 1000.0);
        }
      }
    } else if (kind == EventKind::kConvoyClosed) {
      run->closed_events.push_back(event->convoy);
    } else if (kind == EventKind::kStreamEnd) {
      run->stream_end_seen = true;
      return;
    }
  }
  (void)opts;
}

/// Sends one frame and awaits its ack, backing off and resending while the
/// server NAKs with retryable=1 (ring full). Returns the final ack.
template <typename SendFn>
convoy::StatusOr<AckMsg> SendWithFlowControl(ConvoyClient& client,
                                             SendFn send, StreamRun* run) {
  for (;;) {
    convoy::StatusOr<AckMsg> ack = client.AwaitAck(send());
    if (!ack.ok()) return ack;
    if (ack->code == 0 || ack->retryable == 0) return ack;
    ++run->retry_naks;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void IngestLoop(const LoadgenOptions& opts, StreamRun* run) {
  auto connected = ConvoyClient::Connect(opts.host, opts.port,
                                         MakeClientOptions(opts,
                                                           run->stream_id));
  if (!connected.ok()) {
    run->ok = false;
    run->error = "connect: " + connected.status().ToString();
    return;
  }
  std::unique_ptr<ConvoyClient> client = std::move(*connected);

  const convoy::Status begun =
      client->IngestBegin(run->stream_id, run->feed.query, opts.carry_forward);
  if (!begun.ok()) {
    run->ok = false;
    run->error = "IngestBegin: " + begun.ToString();
    return;
  }

  // The subscriber rides a second connection, subscribed before the first
  // batch so it observes every event of the stream.
  auto sub_connected = ConvoyClient::Connect(
      opts.host, opts.port, MakeClientOptions(opts, 1000 + run->stream_id));
  if (!sub_connected.ok()) {
    run->ok = false;
    run->error = "subscriber connect: " + sub_connected.status().ToString();
    return;
  }
  std::unique_ptr<ConvoyClient> subscriber = std::move(*sub_connected);
  if (const convoy::Status s = subscriber->Subscribe(run->stream_id);
      !s.ok()) {
    run->ok = false;
    run->error = "Subscribe: " + s.ToString();
    return;
  }
  convoy::ServiceThread sub_thread("loadgen-subscriber", [&] {
    SubscriberLoop(opts, run, subscriber.get());
  });

  for (const convoy::FeedTick& tick : run->feed.ticks) {
    // Pipeline batches up to the window, then drain; a tick boundary is a
    // barrier so a retried batch can never land after its EndTick.
    std::vector<uint64_t> outstanding;
    std::vector<size_t> outstanding_batch;
    const auto await_front = [&]() -> bool {
      convoy::StatusOr<AckMsg> ack = client->AwaitAck(outstanding.front());
      const size_t batch_idx = outstanding_batch.front();
      outstanding.erase(outstanding.begin());
      outstanding_batch.erase(outstanding_batch.begin());
      if (!ack.ok()) {
        run->ok = false;
        run->error = "AwaitAck: " + ack.status().ToString();
        return false;
      }
      if (ack->code != 0 && ack->retryable != 0) {
        // Flow control: resend the same batch (still before EndTick).
        ++run->retry_naks;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        outstanding.push_back(
            client->SendBatch(tick.tick, ToWire(tick.batches[batch_idx])));
        outstanding_batch.push_back(batch_idx);
        return true;
      }
      if (ack->code != 0) {
        run->ok = false;
        run->error = "batch NAK: " + ack->message;
        return false;
      }
      run->rows_accepted += ack->accepted;
      return true;
    };

    for (size_t b = 0; b < tick.batches.size(); ++b) {
      outstanding.push_back(
          client->SendBatch(tick.tick, ToWire(tick.batches[b])));
      outstanding_batch.push_back(b);
      ++run->batches_sent;
      if (outstanding.size() >= std::max<size_t>(1, opts.window) &&
          !await_front()) {
        break;
      }
    }
    while (run->ok && !outstanding.empty()) {
      if (!await_front()) break;
    }
    if (!run->ok) break;

    const auto t = static_cast<size_t>(tick.tick);
    if (t < run->endtick_send_us.size()) {
      run->endtick_send_us[t].store(
          static_cast<int64_t>(NowMs() * 1000.0));
    }
    const convoy::StatusOr<AckMsg> ack = SendWithFlowControl(
        *client, [&] { return client->SendEndTick(tick.tick); }, run);
    if (!ack.ok() || ack->code != 0) {
      run->ok = false;
      run->error = "EndTick: " +
                   (ack.ok() ? ack->message : ack.status().ToString());
      break;
    }
  }

  if (run->ok) {
    const convoy::StatusOr<AckMsg> ack = SendWithFlowControl(
        *client, [&] { return client->SendFinish(); }, run);
    if (!ack.ok() || ack->code != 0) {
      run->ok = false;
      run->error = "Finish: " +
                   (ack.ok() ? ack->message : ack.status().ToString());
    }
  }

  if (!run->ok) {
    // No kStreamEnd will ever come — wake the subscriber out of its read.
    subscriber->ShutdownSocket();
  }
  sub_thread.Join();
}

void QueryLoop(const LoadgenOptions& opts,
               const std::vector<std::unique_ptr<StreamRun>>& runs,
               size_t worker, std::atomic<bool>* stop,
               std::vector<double>* latencies_ms, std::atomic<bool>* ok) {
  auto connected = ConvoyClient::Connect(
      opts.host, opts.port, MakeClientOptions(opts, 2000 + worker));
  if (!connected.ok()) {
    ok->store(false);
    return;
  }
  std::unique_ptr<ConvoyClient> client = std::move(*connected);
  size_t round = 0;
  while (!stop->load()) {
    const StreamRun& target = *runs[(worker + round) % runs.size()];
    ++round;
    const double start = NowMs();
    const auto result =
        client->Query(target.stream_id, target.feed.query, /*algo=*/0);
    if (!result.ok()) {
      ok->store(false);
      return;
    }
    // kNotFound races with IngestBegin at startup — benign; any other
    // error code is a real failure.
    if (result->code != 0 &&
        result->code != static_cast<uint8_t>(convoy::StatusCode::kNotFound)) {
      ok->store(false);
      return;
    }
    if (result->code == 0) latencies_ms->push_back(NowMs() - start);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Replays a feed through a local StreamingCmc; returns the closed convoys
/// in emission order — the sequence the server's subscriber must match.
std::vector<convoy::Convoy> LocalReplay(const convoy::StreamFeed& feed,
                                        convoy::Tick carry_forward) {
  convoy::StreamingCmc::Options options;
  options.carry_forward_ticks = carry_forward;
  convoy::StreamingCmc stream(feed.query, options);
  std::vector<convoy::Convoy> closed;
  for (const convoy::FeedTick& tick : feed.ticks) {
    stream.BeginTick(tick.tick).IgnoreError();
    for (const auto& batch : tick.batches) {
      for (const convoy::FeedRow& row : batch) {
        stream.Report(row.id, row.pos).IgnoreError();
      }
    }
    auto result = stream.EndTick();
    if (result.ok()) {
      closed.insert(closed.end(), result->begin(), result->end());
    }
  }
  auto final_result = stream.Finish();
  if (final_result.ok()) {
    closed.insert(closed.end(), final_result->begin(), final_result->end());
  }
  return closed;
}

convoy::StreamFeedConfig MakeFeedConfig(const LoadgenOptions& opts) {
  convoy::StreamFeedConfig config;
  config.num_objects = opts.objects;
  config.ticks = opts.ticks;
  config.batch_rows = opts.batch_rows;
  config.dropout = 0.05;
  config.leave_prob = 0.02;
  config.rejoin_prob = 0.3;
  return config;
}

// -------------------------------------------------------------- load mode

/// Everything one load run produces — the primary BENCH payload, and one
/// sweep row per fsync policy in sweep mode.
struct LoadResult {
  uint64_t rows_accepted = 0;
  uint64_t batches = 0;
  uint64_t retry_naks = 0;
  size_t events = 0;
  double seconds = 0.0;
  double rows_per_sec = 0.0;
  std::vector<double> sub_latency_ms;
  std::vector<double> query_ms;
  bool ingest_ok = true;
  bool queries_ok = true;
  size_t verified_ok = 0;
  size_t streams = 0;
};

LoadResult RunLoad(const LoadgenOptions& base_opts, uint16_t port) {
  LoadgenOptions opts = base_opts;
  opts.port = port;

  std::vector<std::unique_ptr<StreamRun>> runs;
  runs.reserve(opts.ingest);
  const convoy::StreamFeedConfig config = MakeFeedConfig(opts);
  for (size_t i = 0; i < opts.ingest; ++i) {
    auto run = std::make_unique<StreamRun>(
        static_cast<size_t>(std::max<convoy::Tick>(opts.ticks, 0)));
    run->stream_id = i + 1;
    run->feed = convoy::GenerateStreamFeed(config, opts.seed + i);
    runs.push_back(std::move(run));
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> queries_ok{true};
  std::vector<std::vector<double>> query_latencies(opts.query);

  LoadResult result;
  result.streams = runs.size();
  const double ingest_start = NowMs();
  {
    std::vector<convoy::ServiceThread> workers;
    workers.reserve(opts.ingest + opts.query);
    for (size_t i = 0; i < opts.ingest; ++i) {
      StreamRun* run = runs[i].get();
      workers.emplace_back("loadgen-ingest",
                           [&opts, run] { IngestLoop(opts, run); });
    }
    for (size_t j = 0; j < opts.query; ++j) {
      std::vector<double>* lat = &query_latencies[j];
      workers.emplace_back("loadgen-query", [&, j, lat] {
        QueryLoop(opts, runs, j, &stop, lat, &queries_ok);
      });
    }
    // Ingest workers are the first opts.ingest entries; join them, then
    // stop the query workers (joined by the vector's destructor).
    for (size_t i = 0; i < opts.ingest; ++i) workers[i].Join();
    stop.store(true);
  }
  result.seconds = (NowMs() - ingest_start) / 1000.0;

  for (const auto& run : runs) {
    result.rows_accepted += run->rows_accepted;
    result.batches += run->batches_sent;
    result.retry_naks += run->retry_naks;
    result.events += run->events_received;
    result.sub_latency_ms.insert(result.sub_latency_ms.end(),
                                 run->sub_latency_ms.begin(),
                                 run->sub_latency_ms.end());
    if (!run->ok || !run->stream_end_seen) {
      result.ingest_ok = false;
      std::cerr << "stream " << run->stream_id << " failed: "
                << (run->error.empty() ? "no kStreamEnd event" : run->error)
                << "\n";
    }
  }
  for (const auto& lat : query_latencies) {
    result.query_ms.insert(result.query_ms.end(), lat.begin(), lat.end());
  }
  result.queries_ok = queries_ok.load();

  if (opts.verify) {
    for (const auto& run : runs) {
      const std::vector<convoy::Convoy> expected =
          LocalReplay(run->feed, opts.carry_forward);
      if (expected == run->closed_events) {
        ++result.verified_ok;
      } else {
        std::cerr << "verify FAILED for stream " << run->stream_id
                  << ": expected " << expected.size()
                  << " closed convoy event(s), got "
                  << run->closed_events.size() << "\n";
      }
    }
  }
  result.rows_per_sec =
      result.seconds > 0
          ? static_cast<double>(result.rows_accepted) / result.seconds
          : 0.0;
  return result;
}

// --------------------------------------------------------- daemon control

bool EnsureDir(const std::string& path) {
  return ::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST;
}

/// Deletes the WAL segments of `dir` so a spawned daemon starts fresh —
/// stale segments would replay last run's streams into this run's ids.
void RemoveWalFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (const struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("wal-", 0) == 0) {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

struct DaemonProcess {
  pid_t pid = -1;
  std::FILE* out = nullptr;  ///< read side of the daemon's stdout pipe
  uint16_t port = 0;
  bool ok = false;
  std::string error;
};

/// fork/execs convoy_serverd on an ephemeral port with the given WAL dir,
/// then scrapes its "listening on HOST:PORT" line for the bound port.
/// `with_faults` turns on the daemon's seeded fault injector (short
/// writes + EINTR — the recoverable kinds) for chaos runs.
DaemonProcess SpawnDaemon(const LoadgenOptions& opts,
                          const std::string& wal_dir, bool with_faults) {
  DaemonProcess daemon;
  int fds[2];
  if (::pipe(fds) != 0) {
    daemon.error = "pipe failed";
    return daemon;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    daemon.error = "fork failed";
    return daemon;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<std::string> args = {
        opts.serverd, "--host",    opts.host, "--port", "0",
        "--wal-dir",  wal_dir,     "--fsync", opts.fsync};
    if (with_faults) {
      const std::vector<std::string> faults = {
          "--fault-seed",             std::to_string(opts.seed),
          "--fault-short-write-prob", "0.05",
          "--fault-eintr-prob",       "0.05"};
      args.insert(args.end(), faults.begin(), faults.end());
    }
    std::vector<char*> argv_c;
    argv_c.reserve(args.size() + 1);
    for (std::string& a : args) argv_c.push_back(a.data());
    argv_c.push_back(nullptr);
    ::execv(opts.serverd.c_str(), argv_c.data());
    _exit(127);
  }
  ::close(fds[1]);
  daemon.pid = pid;
  daemon.out = ::fdopen(fds[0], "r");
  char line[512];
  while (daemon.out != nullptr &&
         std::fgets(line, sizeof line, daemon.out) != nullptr) {
    const std::string text = line;
    if (text.find("listening on ") == std::string::npos) continue;
    const size_t colon = text.rfind(':');
    if (colon == std::string::npos) break;
    daemon.port =
        static_cast<uint16_t>(std::strtoul(text.c_str() + colon + 1,
                                           nullptr, 10));
    if (daemon.port != 0) daemon.ok = true;
    break;
  }
  if (!daemon.ok) daemon.error = "daemon did not report a listening port";
  return daemon;
}

void StopDaemon(DaemonProcess* daemon, int sig) {
  if (daemon->pid > 0) {
    ::kill(daemon->pid, sig);
    int status = 0;
    ::waitpid(daemon->pid, &status, 0);
    daemon->pid = -1;
  }
  if (daemon->out != nullptr) {
    std::fclose(daemon->out);
    daemon->out = nullptr;
  }
  daemon->ok = false;
}

// --------------------------------------------------------------- chaos

struct ChaosStreamRun {
  uint64_t stream_id = 0;
  convoy::StreamFeed feed;
  uint64_t rows_accepted = 0;
  uint64_t resumes = 0;  ///< reconnect + IngestBegin cycles after the first
  uint64_t duplicate_acks = 0;
  uint64_t retry_naks = 0;
  bool ok = true;
  std::string error;
  /// Closed-convoy events recovered after ingest, keyed by event_index.
  std::map<uint64_t, convoy::Convoy> closed_by_index;
};

/// The chaos controller publishes the live daemon's port here (0 while a
/// restart is in flight); ingest threads re-read it on every reconnect.
struct ChaosShared {
  std::atomic<uint32_t> port{0};
};

/// Drives one stream with sequential (window=1) sends, surviving any
/// number of daemon kills: on a connection/deadline error it reconnects,
/// and the IngestBegin ack's resume_seq decides whether the one in-flight
/// item was applied before the crash (applied => WAL-logged => recovered)
/// or must be resent. Every op is therefore applied exactly once — the
/// client-side half of the crash-recovery invariant.
void ChaosIngest(const LoadgenOptions& opts, ChaosShared* shared,
                 ChaosStreamRun* run) {
  struct Op {
    int kind;  // 0 = batch, 1 = end-tick, 2 = finish
    convoy::Tick tick;
    const std::vector<convoy::FeedRow>* batch;
  };
  std::vector<Op> ops;
  for (const convoy::FeedTick& tick : run->feed.ticks) {
    for (const auto& batch : tick.batches) {
      ops.push_back(Op{0, tick.tick, &batch});
    }
    ops.push_back(Op{1, tick.tick, nullptr});
  }
  ops.push_back(Op{2, 0, nullptr});

  std::unique_ptr<ConvoyClient> client;
  size_t pos = 0;
  uint64_t inflight_seq = 0;
  bool first_connect = true;

  const auto reconnect = [&]() -> bool {
    client.reset();
    for (int attempt = 0; attempt < 400; ++attempt) {
      const auto port = static_cast<uint16_t>(shared->port.load());
      if (port != 0) {
        auto connected = ConvoyClient::Connect(
            opts.host, port, MakeClientOptions(opts, run->stream_id));
        if (connected.ok()) {
          std::unique_ptr<ConvoyClient> candidate = std::move(*connected);
          uint64_t resume_seq = 0;
          const convoy::Status begun =
              candidate->IngestBegin(run->stream_id, run->feed.query,
                                     opts.carry_forward, &resume_seq);
          if (begun.ok()) {
            // With window=1 at most the in-flight op is unacked; the
            // server's recovered resume_seq says whether it landed.
            if (inflight_seq != 0 && resume_seq >= inflight_seq) ++pos;
            inflight_seq = 0;
            client = std::move(candidate);
            if (!first_connect) ++run->resumes;
            first_connect = false;
            return true;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    run->ok = false;
    run->error = "chaos: could not reconnect to the restarted daemon";
    return false;
  };

  if (!reconnect()) return;
  int nak_attempt = 0;
  while (pos < ops.size()) {
    const Op& op = ops[pos];
    uint64_t seq = 0;
    switch (op.kind) {
      case 0:
        seq = client->SendBatch(op.tick, ToWire(*op.batch));
        break;
      case 1:
        seq = client->SendEndTick(op.tick);
        break;
      default:
        seq = client->SendFinish();
        break;
    }
    inflight_seq = seq;
    const convoy::StatusOr<AckMsg> ack = client->AwaitAck(seq);
    if (!ack.ok()) {
      // Connection reset / deadline — almost certainly the controller
      // killed the daemon mid-op. Reconnect and let resume_seq decide.
      if (!reconnect()) return;
      continue;
    }
    if (ack->code != 0) {
      if (ack->retryable != 0) {
        ++run->retry_naks;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 << std::min(nak_attempt++, 5)));
        continue;  // resend the same op under a fresh seq
      }
      run->ok = false;
      run->error = "chaos NAK: " + ack->message;
      return;
    }
    nak_attempt = 0;
    if ((ack->flags & convoy::server::kAckFlagDuplicate) != 0) {
      ++run->duplicate_acks;
    }
    run->rows_accepted += ack->accepted;
    inflight_seq = 0;
    ++pos;
    if (op.kind == 1) {
      // Pace the stream one tick per millisecond so the controller's
      // seeded kill points land mid-ingest (chaos is a recovery test,
      // not a throughput benchmark — rows/s comes from the load modes).
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

struct ChaosResult {
  size_t kills = 0;
  uint64_t resumes = 0;
  uint64_t duplicate_acks = 0;
  uint64_t retry_naks = 0;
  uint64_t rows_accepted = 0;
  size_t events = 0;
  double seconds = 0.0;
  double rows_per_sec = 0.0;
  std::vector<double> query_ms;
  size_t verified_ok = 0;
  size_t streams = 0;
  bool spawn_ok = true;
  bool streams_ok = true;
};

ChaosResult RunChaos(const LoadgenOptions& opts) {
  ChaosResult result;
  const std::string wal_dir = opts.wal_root + "/chaos";
  if (!EnsureDir(opts.wal_root) || !EnsureDir(wal_dir)) {
    std::cerr << "cannot create " << wal_dir << "\n";
    result.spawn_ok = false;
    return result;
  }
  RemoveWalFiles(wal_dir);

  ChaosShared shared;
  DaemonProcess daemon = SpawnDaemon(opts, wal_dir, /*with_faults=*/true);
  if (!daemon.ok) {
    std::cerr << "spawn failed: " << daemon.error << "\n";
    result.spawn_ok = false;
    return result;
  }
  shared.port.store(daemon.port);

  std::vector<std::unique_ptr<ChaosStreamRun>> runs;
  runs.reserve(opts.ingest);
  const convoy::StreamFeedConfig config = MakeFeedConfig(opts);
  for (size_t i = 0; i < opts.ingest; ++i) {
    auto run = std::make_unique<ChaosStreamRun>();
    run->stream_id = i + 1;
    run->feed = convoy::GenerateStreamFeed(config, opts.seed + i);
    runs.push_back(std::move(run));
  }
  result.streams = runs.size();

  std::atomic<size_t> remaining{opts.ingest};
  const double start = NowMs();
  {
    std::vector<convoy::ServiceThread> workers;
    workers.reserve(opts.ingest);
    for (auto& run_ptr : runs) {
      ChaosStreamRun* run = run_ptr.get();
      workers.emplace_back("chaos-ingest", [&opts, &shared, &remaining, run] {
        ChaosIngest(opts, &shared, run);
        remaining.fetch_sub(1);
      });
    }

    // The kill schedule: seeded sleeps, then SIGKILL — no warning, no
    // flush — and a restart on the same WAL dir. Recovery runs inside
    // the daemon's Start() before it prints its port.
    uint64_t rng = opts.seed ^ 0x9e3779b97f4a7c15ULL;
    while (remaining.load() > 0 && result.kills < opts.kills) {
      const uint64_t draw = SplitMix64(&rng);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(15 + draw % 60)));
      if (remaining.load() == 0) break;
      shared.port.store(0);
      StopDaemon(&daemon, SIGKILL);
      ++result.kills;
      daemon = SpawnDaemon(opts, wal_dir, /*with_faults=*/true);
      if (!daemon.ok) {
        std::cerr << "restart failed: " << daemon.error << "\n";
        result.spawn_ok = false;
        break;  // ingest threads will exhaust their reconnect budget
      }
      shared.port.store(daemon.port);
    }
    for (convoy::ServiceThread& worker : workers) worker.Join();
  }
  result.seconds = (NowMs() - start) / 1000.0;

  // Recovery verification: the surviving daemon's closed-convoy history —
  // WAL-rebuilt across every kill — must match an unfaulted local replay,
  // and the recovered stream must still answer ad-hoc queries.
  for (auto& run_ptr : runs) {
    ChaosStreamRun* run = run_ptr.get();
    result.resumes += run->resumes;
    result.duplicate_acks += run->duplicate_acks;
    result.retry_naks += run->retry_naks;
    result.rows_accepted += run->rows_accepted;
    if (!run->ok) {
      std::cerr << "chaos stream " << run->stream_id
                << " failed: " << run->error << "\n";
      result.streams_ok = false;
      continue;
    }
    if (!daemon.ok) {
      result.streams_ok = false;
      continue;
    }
    const std::vector<convoy::Convoy> expected =
        LocalReplay(run->feed, opts.carry_forward);

    auto connected = ConvoyClient::Connect(
        opts.host, daemon.port,
        MakeClientOptions(opts, 3000 + run->stream_id));
    if (!connected.ok()) {
      std::cerr << "chaos verify connect failed for stream "
                << run->stream_id << "\n";
      result.streams_ok = false;
      continue;
    }
    std::unique_ptr<ConvoyClient> client = std::move(*connected);
    if (const convoy::Status s =
            client->Subscribe(run->stream_id, /*replay_closed=*/true);
        !s.ok()) {
      std::cerr << "chaos verify subscribe failed for stream "
                << run->stream_id << ": " << s << "\n";
      result.streams_ok = false;
      continue;
    }
    while (run->closed_by_index.size() < expected.size()) {
      convoy::StatusOr<EventMsg> event = client->NextEvent();
      if (!event.ok()) break;  // deadline — the count check below fails
      ++result.events;
      if (static_cast<EventKind>(event->kind) == EventKind::kConvoyClosed &&
          event->event_index != 0) {
        run->closed_by_index.emplace(event->event_index, event->convoy);
      }
    }
    bool match = run->closed_by_index.size() == expected.size();
    for (size_t i = 0; match && i < expected.size(); ++i) {
      const auto it = run->closed_by_index.find(i + 1);
      match = it != run->closed_by_index.end() && it->second == expected[i];
    }
    if (match) {
      ++result.verified_ok;
    } else {
      std::cerr << "chaos verify FAILED for stream " << run->stream_id
                << ": expected " << expected.size()
                << " recovered closed convoy event(s), got "
                << run->closed_by_index.size() << "\n";
      result.streams_ok = false;
    }

    const double query_start = NowMs();
    const auto query = client->Query(run->stream_id, run->feed.query);
    if (query.ok() && query->code == 0) {
      result.query_ms.push_back(NowMs() - query_start);
    } else {
      std::cerr << "chaos post-recovery query failed for stream "
                << run->stream_id << "\n";
      result.streams_ok = false;
    }
  }
  StopDaemon(&daemon, SIGTERM);

  result.rows_per_sec =
      result.seconds > 0
          ? static_cast<double>(result.rows_accepted) / result.seconds
          : 0.0;
  return result;
}

// ----------------------------------------------------------------- output

struct SweepRow {
  std::string policy;
  uint64_t rows_accepted = 0;
  double seconds = 0.0;
  double rows_per_sec = 0.0;
  bool ok = false;
};

void WriteQuantiles(std::ostream& out, std::vector<double> values) {
  out << "{\"count\":" << values.size();
  if (!values.empty()) {
    out << ",\"p50\":" << convoy::Quantile(values, 0.50)
        << ",\"p99\":" << convoy::Quantile(std::move(values), 0.99);
  }
  out << "}";
}

/// The "convoy-bench-server-v2" document: v1's sections plus the fsync
/// sweep rows and the chaos verdict (validated by run_checks.sh).
void WriteJsonV2(std::ostream& out, const LoadgenOptions& opts,
                 const LoadResult& load, const std::vector<SweepRow>& sweep,
                 const ChaosResult* chaos) {
  out << "{\"schema\":\"convoy-bench-server-v2\","
      << "\"config\":{\"ingest_clients\":" << opts.ingest
      << ",\"query_clients\":" << opts.query << ",\"ticks\":" << opts.ticks
      << ",\"objects\":" << opts.objects << ",\"batch_rows\":"
      << opts.batch_rows << ",\"window\":" << opts.window
      << ",\"seed\":" << opts.seed << ",\"deadline_ms\":" << opts.deadline_ms
      << ",\"fsync\":\"" << opts.fsync << "\"},"
      << "\"ingest\":{\"rows_accepted\":" << load.rows_accepted
      << ",\"batches\":" << load.batches
      << ",\"retryable_naks\":" << load.retry_naks
      << ",\"seconds\":" << load.seconds
      << ",\"rows_per_sec\":" << load.rows_per_sec << "},"
      << "\"subscription\":{\"events\":" << load.events
      << ",\"latency_ms\":";
  WriteQuantiles(out, load.sub_latency_ms);
  out << "},\"query\":{\"latency_ms\":";
  WriteQuantiles(out, load.query_ms);
  out << "},\"verify\":{\"enabled\":" << (opts.verify ? "true" : "false")
      << ",\"streams_ok\":" << load.verified_ok
      << ",\"streams_total\":" << load.streams << "},"
      << "\"fsync_sweep\":[";
  for (size_t i = 0; i < sweep.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"policy\":\"" << sweep[i].policy
        << "\",\"rows_accepted\":" << sweep[i].rows_accepted
        << ",\"seconds\":" << sweep[i].seconds
        << ",\"rows_per_sec\":" << sweep[i].rows_per_sec
        << ",\"ok\":" << (sweep[i].ok ? "true" : "false") << "}";
  }
  out << "],\"chaos\":{\"enabled\":" << (chaos != nullptr ? "true" : "false");
  if (chaos != nullptr) {
    out << ",\"kills\":" << chaos->kills << ",\"resumes\":" << chaos->resumes
        << ",\"duplicate_acks\":" << chaos->duplicate_acks
        << ",\"retryable_naks\":" << chaos->retry_naks
        << ",\"streams_ok\":" << chaos->verified_ok
        << ",\"streams_total\":" << chaos->streams;
  }
  out << "}}\n";
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::cout
        << "convoy_loadgen — load generator + chaos harness for "
           "convoy_serverd\n"
           "  convoy_loadgen --port P [--host H] [--ingest N] [--query M]\n"
           "                 [--ticks T] [--objects O] [--batch-rows B]\n"
           "                 [--window W] [--seed S] [--carry-forward C]\n"
           "                 [--deadline-ms MS] [--json out.json] "
           "[--verify]\n"
           "  convoy_loadgen --serverd PATH --sweep-fsync [--wal-root DIR]\n"
           "  convoy_loadgen --serverd PATH --chaos [--kills K] "
           "[--fsync POLICY]\n";
    return argc > 1 ? 1 : 0;
  }
  if (opts.ingest == 0) {
    std::cerr << "--ingest must be >= 1\n";
    return 1;
  }
  if ((opts.chaos || opts.sweep_fsync) && opts.serverd.empty()) {
    std::cerr << "--chaos / --sweep-fsync need --serverd PATH\n";
    return 1;
  }
  if (!opts.chaos && !opts.sweep_fsync && opts.port == 0) {
    std::cerr << "--port is required (or use --serverd with a mode)\n";
    return 1;
  }

  LoadResult load;
  std::vector<SweepRow> sweep;
  ChaosResult chaos;
  bool ran_chaos = false;

  if (opts.chaos) {
    ran_chaos = true;
    chaos = RunChaos(opts);
    std::cout << "chaos: " << chaos.kills << " kill/restart cycle(s), "
              << chaos.resumes << " client resume(s), "
              << chaos.duplicate_acks << " duplicate ack(s), "
              << chaos.rows_accepted << " rows in " << chaos.seconds
              << " s\nchaos verify: " << chaos.verified_ok << "/"
              << chaos.streams
              << " streams bit-identical to unfaulted replay\n";
    // The chaos run doubles as the primary ingest payload of the JSON.
    load.rows_accepted = chaos.rows_accepted;
    load.retry_naks = chaos.retry_naks;
    load.events = chaos.events;
    load.seconds = chaos.seconds;
    load.rows_per_sec = chaos.rows_per_sec;
    load.query_ms = chaos.query_ms;
    load.verified_ok = chaos.verified_ok;
    load.streams = chaos.streams;
    load.ingest_ok = chaos.streams_ok;
  } else if (opts.sweep_fsync) {
    if (!EnsureDir(opts.wal_root)) {
      std::cerr << "cannot create " << opts.wal_root << "\n";
      return 2;
    }
    for (const char* policy : {"none", "interval", "every_tick"}) {
      LoadgenOptions run_opts = opts;
      run_opts.fsync = policy;
      const std::string wal_dir =
          opts.wal_root + "/sweep-" + std::string(policy);
      if (!EnsureDir(wal_dir)) {
        std::cerr << "cannot create " << wal_dir << "\n";
        return 2;
      }
      RemoveWalFiles(wal_dir);
      DaemonProcess daemon =
          SpawnDaemon(run_opts, wal_dir, /*with_faults=*/false);
      if (!daemon.ok) {
        std::cerr << "spawn failed (" << policy << "): " << daemon.error
                  << "\n";
        return 2;
      }
      const LoadResult run = RunLoad(run_opts, daemon.port);
      StopDaemon(&daemon, SIGTERM);
      SweepRow row;
      row.policy = policy;
      row.rows_accepted = run.rows_accepted;
      row.seconds = run.seconds;
      row.rows_per_sec = run.rows_per_sec;
      row.ok = run.ingest_ok && run.queries_ok &&
               (!opts.verify || run.verified_ok == run.streams);
      sweep.push_back(row);
      std::cout << "fsync=" << policy << ": " << run.rows_accepted
                << " rows in " << run.seconds << " s (" << run.rows_per_sec
                << " rows/s)\n";
      if (std::string(policy) == "none") load = run;
    }
  } else {
    load = RunLoad(opts, opts.port);
    std::cout << "ingest: " << load.rows_accepted << " rows in "
              << load.seconds << " s (" << load.rows_per_sec << " rows/s), "
              << load.batches << " batches, " << load.retry_naks
              << " flow-control retries\n"
              << "subscription: " << load.events << " events, "
              << load.sub_latency_ms.size() << " tick latency samples\n"
              << "queries: " << load.query_ms.size() << " completed\n";
    if (opts.verify) {
      std::cout << "verify: " << load.verified_ok << "/" << load.streams
                << " streams bit-identical to local replay\n";
    }
  }

  if (!opts.json_out.empty()) {
    std::ofstream out(opts.json_out);
    if (!out) {
      std::cerr << "cannot write " << opts.json_out << "\n";
      return 2;
    }
    WriteJsonV2(out, opts, load, sweep, ran_chaos ? &chaos : nullptr);
    std::cout << "wrote " << opts.json_out << "\n";
  }

  if (ran_chaos) {
    if (!chaos.spawn_ok) return 2;
    if (!chaos.streams_ok || chaos.verified_ok != chaos.streams) return 3;
    return 0;
  }
  if (opts.sweep_fsync) {
    for (const SweepRow& row : sweep) {
      if (!row.ok) return 3;
    }
    return 0;
  }
  if (!load.ingest_ok || !load.queries_ok) return 3;
  if (opts.verify && load.verified_ok != load.streams) return 3;
  return 0;
}
