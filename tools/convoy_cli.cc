// convoy_cli — command-line convoy discovery over CSV trajectory data.
//
// Usage:
//   convoy_cli --input data.csv --m 3 --k 180 --e 8.0 [--algo auto|cuts*|...]
//              [--delta D] [--lambda L] [--explain] [--stats] [--verify]
//              [--report out.json]
//   convoy_cli --generate trucklike --output data.csv [--seed 7] [--scale S]
//
// Queries run through the ConvoyEngine planner/executor: --algo auto lets
// the QueryPlanner pick the physical algorithm from database statistics,
// and --explain prints the resolved QueryPlan (chosen algorithm, resolved
// delta/lambda, cache status, work estimate) before execution.
//
// Input format: CSV rows `object_id,tick,x,y` (header optional).
// Output: one line per convoy, `objects...  [start,end]`.
//
// Exit codes (diagnostics go to stderr — see README "Error handling"):
//   0  success
//   1  usage error (unknown flag/algorithm/preset, missing value)
//   2  I/O error (cannot open input / write output)
//   3  invalid query or filter options (ValidateQuery rejected them)
//   4  data error (the input parsed to an empty database)

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "convoy/convoy.h"

namespace {

// Exit codes — keep in sync with the file comment and README.
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitIo = 2;
constexpr int kExitInvalidQuery = 3;
constexpr int kExitDataError = 4;

struct CliOptions {
  std::string input;
  std::string output;
  std::string generate;
  std::string results_out;  // write convoys here (.json => JSON, else CSV)
  std::string report_out;   // write the full ResultSet + plan JSON here
  std::string trace_out;    // write a Chrome trace-event JSON here
  std::string algo = "cuts*";
  convoy::ConvoyQuery query{3, 180, 8.0};
  double delta = -1.0;
  convoy::Tick lambda = -1;
  double scale = 0.25;
  uint64_t seed = 7;
  size_t repeat = 1;  // re-execute the prepared plan this many times
  bool print_stats = false;
  bool explain = false;
  bool explain_analyze = false;
  bool verify = false;
  bool use_rtree = false;
  bool exact_refine = false;
  // Cleaning (applied before discovery when any option is set).
  double clean_max_speed = -1.0;
  convoy::Tick clean_max_gap = -1;
  bool clean_stationary = false;
  // Server mode (--serve): run the convoy streaming server in-process.
  bool serve = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t ring_capacity = 64;
  double max_seconds = -1.0;  // < 0: run until signalled
};

void PrintUsage() {
  std::cout <<
      "convoy_cli — convoy discovery in trajectory databases (VLDB'08)\n\n"
      "Discover convoys in a CSV file:\n"
      "  convoy_cli --input data.csv --m 3 --k 180 --e 8.0\n"
      "             [--algo auto|cmc|cuts|cuts+|cuts*|mc2] [--delta D]\n"
      "             [--lambda L] [--theta T] [--threads N] [--explain]\n"
      "             [--explain-analyze] [--trace out.json] [--stats]\n"
      "             [--verify] [--rtree] [--exact-refine]\n"
      "             [--repeat N] [--results out.csv|out.json]\n"
      "             [--report out.json] [--clean-max-speed V]\n"
      "             [--clean-max-gap G] [--clean-stationary]\n\n"
      "--algo auto lets the planner pick (exact CMC for tiny inputs,\n"
      "CuTS* otherwise); --explain prints the resolved query plan.\n"
      "--explain-analyze runs the query with a trace attached and prints\n"
      "the plan plus measured counters/spans; --trace out.json writes the\n"
      "execution timeline as Chrome trace-event JSON (load it in Perfetto\n"
      "or chrome://tracing). --report includes the same metrics as JSON.\n"
      "--repeat N re-executes the prepared plan N times and reports\n"
      "first-run vs warm-run latency (the snapshot store and cached\n"
      "grid indexes make warm runs cheaper).\n\n"
      "Generate a synthetic dataset:\n"
      "  convoy_cli --generate trucklike|cattlelike|carlike|taxilike\n"
      "             --output data.csv [--seed N] [--scale S]\n\n"
      "Serve the streaming ingest/subscription/query protocol over TCP\n"
      "(same server as the convoy_serverd daemon; see README \"Server\"):\n"
      "  convoy_cli --serve [--host H] [--port P] [--ring-capacity N]\n"
      "             [--max-seconds S]\n";
}

bool ParseArgs(int argc, char** argv, CliOptions* opts, double* theta) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return false;
    const char* value = nullptr;
    if (arg == "--input" && (value = next())) {
      opts->input = value;
    } else if (arg == "--output" && (value = next())) {
      opts->output = value;
    } else if (arg == "--generate" && (value = next())) {
      opts->generate = value;
    } else if (arg == "--algo" && (value = next())) {
      opts->algo = value;
    } else if (arg == "--m" && (value = next())) {
      opts->query.m = static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--k" && (value = next())) {
      opts->query.k = std::strtoll(value, nullptr, 10);
    } else if (arg == "--e" && (value = next())) {
      opts->query.e = std::strtod(value, nullptr);
    } else if (arg == "--delta" && (value = next())) {
      opts->delta = std::strtod(value, nullptr);
    } else if (arg == "--lambda" && (value = next())) {
      opts->lambda = std::strtoll(value, nullptr, 10);
    } else if (arg == "--theta" && (value = next())) {
      *theta = std::strtod(value, nullptr);
    } else if (arg == "--threads" && (value = next())) {
      // Worker threads for every parallelizable phase (0 = all hardware
      // threads). Results are identical for any value.
      opts->query.num_threads =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--scale" && (value = next())) {
      opts->scale = std::strtod(value, nullptr);
    } else if (arg == "--seed" && (value = next())) {
      opts->seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--repeat" && (value = next())) {
      opts->repeat = static_cast<size_t>(std::strtoull(value, nullptr, 10));
      if (opts->repeat == 0) opts->repeat = 1;
    } else if (arg == "--results" && (value = next())) {
      opts->results_out = value;
    } else if (arg == "--report" && (value = next())) {
      opts->report_out = value;
    } else if (arg == "--trace" && (value = next())) {
      opts->trace_out = value;
    } else if (arg == "--clean-max-speed" && (value = next())) {
      opts->clean_max_speed = std::strtod(value, nullptr);
    } else if (arg == "--clean-max-gap" && (value = next())) {
      opts->clean_max_gap = std::strtoll(value, nullptr, 10);
    } else if (arg == "--serve") {
      opts->serve = true;
    } else if (arg == "--host" && (value = next())) {
      opts->host = value;
    } else if (arg == "--port" && (value = next())) {
      opts->port = static_cast<uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--ring-capacity" && (value = next())) {
      opts->ring_capacity =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--max-seconds" && (value = next())) {
      opts->max_seconds = std::strtod(value, nullptr);
    } else if (arg == "--clean-stationary") {
      opts->clean_stationary = true;
    } else if (arg == "--rtree") {
      opts->use_rtree = true;
    } else if (arg == "--exact-refine") {
      opts->exact_refine = true;
    } else if (arg == "--stats") {
      opts->print_stats = true;
    } else if (arg == "--explain") {
      opts->explain = true;
    } else if (arg == "--explain-analyze") {
      opts->explain_analyze = true;
    } else if (arg == "--verify") {
      opts->verify = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
    const bool flag_arg = arg == "--stats" || arg == "--verify" ||
                          arg == "--explain" || arg == "--explain-analyze" ||
                          arg == "--rtree" || arg == "--exact-refine" ||
                          arg == "--clean-stationary" || arg == "--serve";
    if (value == nullptr && arg.rfind("--", 0) == 0 && !flag_arg) {
      return false;
    }
  }
  return true;
}

int Generate(const CliOptions& opts) {
  std::map<std::string, convoy::ScenarioConfig> presets = {
      {"trucklike", convoy::TruckLikeConfig(opts.scale)},
      {"cattlelike", convoy::CattleLikeConfig(opts.scale)},
      {"carlike", convoy::CarLikeConfig(opts.scale)},
      {"taxilike", convoy::TaxiLikeConfig(opts.scale)},
  };
  const auto it = presets.find(opts.generate);
  if (it == presets.end()) {
    std::cerr << "unknown preset: " << opts.generate << "\n";
    return kExitUsage;
  }
  const convoy::ScenarioData data =
      convoy::GenerateScenario(it->second, opts.seed);
  convoy::PrintDatasetReport(data.db, data.name, std::cout);
  std::cout << "  planted convoys:            " << data.planted.size() << "\n";
  if (opts.output.empty()) {
    std::cerr << "--output required with --generate\n";
    return kExitUsage;
  }
  if (!convoy::SaveTrajectoriesCsv(data.db, opts.output)) {
    std::cerr << "cannot write " << opts.output << "\n";
    return kExitIo;
  }
  std::cout << "wrote " << opts.output << "\n";
  return kExitOk;
}

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

// --serve: the same ConvoyServer that convoy_serverd runs, embedded in the
// CLI so a single binary covers batch discovery and the live protocol.
int Serve(const CliOptions& opts) {
  convoy::server::ServerOptions server_options;
  server_options.host = opts.host;
  server_options.port = opts.port;
  server_options.ring_capacity =
      opts.ring_capacity == 0 ? 1 : opts.ring_capacity;

  convoy::server::ConvoyServer server(server_options);
  if (const convoy::Status started = server.Start(); !started.ok()) {
    std::cerr << "cannot start: " << started << "\n";
    return kExitIo;
  }
  // Same scrapeable line as convoy_serverd — keep the format stable.
  std::cout << "listening on " << server.host() << ":" << server.port()
            << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  convoy::Stopwatch uptime;
  while (g_stop == 0) {
    if (opts.max_seconds >= 0 &&
        uptime.ElapsedSeconds() >= opts.max_seconds) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "shutting down\n";
  server.Shutdown();
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  double theta = 0.8;
  if (!ParseArgs(argc, argv, &opts, &theta) ||
      (opts.input.empty() && opts.generate.empty() && !opts.serve)) {
    PrintUsage();
    return argc > 1 ? kExitUsage : kExitOk;
  }

  if (opts.serve) return Serve(opts);
  if (!opts.generate.empty()) return Generate(opts);

  convoy::CutsFilterOptions filter_options;
  filter_options.delta = opts.delta;
  filter_options.lambda = opts.lambda;
  filter_options.use_rtree = opts.use_rtree;
  if (opts.exact_refine) {
    filter_options.refine_mode = convoy::RefineMode::kFullWindow;
  }

  // Reject out-of-contract parameters before touching the input — they are
  // knowable from argv alone, and a release build must fail loudly here,
  // not return silently wrong convoys after minutes of parsing.
  if (const convoy::Status s = convoy::ValidateQuery(opts.query); !s.ok()) {
    std::cerr << "invalid query: " << s << "\n";
    return kExitInvalidQuery;
  }
  if (const convoy::Status s = convoy::ValidateFilterOptions(filter_options);
      !s.ok()) {
    std::cerr << "invalid filter options: " << s << "\n";
    return kExitInvalidQuery;
  }

  const convoy::CsvLoadResult loaded = convoy::LoadTrajectoriesCsv(opts.input);
  if (!loaded.ok) {
    std::cerr << loaded.error << "\n";
    return kExitIo;
  }
  if (loaded.lines_skipped > 0) {
    std::cerr << "warning: skipped " << loaded.lines_skipped
              << " malformed row(s):\n";
    for (const convoy::CsvLineDiagnostic& diag : loaded.diagnostics) {
      std::cerr << "  line " << diag.line_number << ": " << diag.reason
                << "\n";
    }
    if (loaded.lines_skipped > loaded.diagnostics.size()) {
      std::cerr << "  ... and "
                << loaded.lines_skipped - loaded.diagnostics.size()
                << " more\n";
    }
  }
  if (loaded.duplicates_collapsed > 0) {
    std::cerr << "warning: collapsed " << loaded.duplicates_collapsed
              << " duplicate (object_id, tick) row(s) to their last "
                 "occurrence\n";
  }
  if (loaded.db.Empty()) {
    std::cerr << "error: " << opts.input
              << " contains no usable trajectory rows\n";
    return kExitDataError;
  }

  convoy::TrajectoryDatabase db = loaded.db;
  if (opts.clean_max_speed > 0 || opts.clean_max_gap > 0 ||
      opts.clean_stationary) {
    convoy::CleaningOptions cleaning;
    cleaning.max_speed = opts.clean_max_speed;
    cleaning.max_gap_ticks = opts.clean_max_gap;
    cleaning.drop_stationary_duplicates = opts.clean_stationary;
    convoy::CleaningReport report;
    db = convoy::CleanDatabase(db, cleaning, &report);
    std::cerr << "cleaning: " << report.spikes_removed << " spike(s), "
              << report.duplicates_removed << " duplicate(s) removed, "
              << report.trajectories_split << " split(s), "
              << report.trajectories_dropped << " fragment(s) dropped\n";
  }

  // Plan, optionally explain, then execute — the v2 planner/executor path.
  const std::optional<convoy::AlgorithmChoice> choice =
      convoy::ParseAlgorithmChoice(opts.algo);
  if (!choice.has_value()) {
    std::cerr << "unknown algorithm: " << opts.algo << "\n";
    return kExitUsage;
  }
  convoy::Mc2Options mc2_options;
  mc2_options.theta = theta;

  // Observability: --explain-analyze and --trace share one TraceSession
  // spanning Prepare and the first Execute. Warm re-executions (--repeat)
  // stay untraced so the reported warm latency is the untraced hot path.
  const bool tracing = opts.explain_analyze || !opts.trace_out.empty();
  std::optional<convoy::TraceSession> trace;
  if (tracing) trace.emplace();
  convoy::TraceSession* const trace_ptr = tracing ? &*trace : nullptr;

  convoy::ConvoyEngine engine(std::move(db));
  const convoy::StatusOr<convoy::QueryPlan> plan =
      engine.Prepare(opts.query, *choice, filter_options, mc2_options,
                     trace_ptr);
  if (!plan.ok()) {
    // Unreachable in practice: parameters were validated above, before the
    // input was parsed. Kept for belt and braces.
    std::cerr << "invalid query: " << plan.status() << "\n";
    return kExitInvalidQuery;
  }
  if (opts.explain) std::cout << plan->Explain();

  convoy::ExecHooks exec_hooks;
  exec_hooks.trace = trace_ptr;

  convoy::Stopwatch first_watch;
  const convoy::StatusOr<convoy::ConvoyResultSet> executed =
      engine.Execute(*plan, exec_hooks);
  const double first_seconds = first_watch.ElapsedSeconds();
  if (!executed.ok()) {
    std::cerr << "execution failed: " << executed.status() << "\n";
    return kExitInvalidQuery;
  }
  const convoy::ConvoyResultSet& result = *executed;

  if (opts.repeat > 1) {
    // Warm re-executions of the same prepared plan: the snapshot store,
    // its cached grid indexes, and the simplification cache are all hot,
    // so this is the per-query cost of the build-once-query-many shape.
    convoy::Stopwatch warm_watch;
    for (size_t i = 1; i < opts.repeat; ++i) {
      const auto warm = engine.Execute(*plan);
      if (!warm.ok() || warm->Count() != result.Count()) {
        std::cerr << "warm re-execution diverged\n";
        return kExitInvalidQuery;
      }
    }
    const double warm_avg =
        warm_watch.ElapsedSeconds() / static_cast<double>(opts.repeat - 1);
    std::cout << "timing: ";
    // Attribute the breakdown to the snapshot store only when the plan
    // actually runs on one; CuTS-family warm runs are faster because of
    // the simplification cache, not grid caching.
    if (plan->store_cache != convoy::PlanCacheStatus::kNotApplicable) {
      std::cout << "store build " << plan->store_build_seconds * 1e3
                << " ms (at prepare), first run " << first_seconds * 1e3
                << " ms (cold grid cache), ";
    } else {
      std::cout << "first run " << first_seconds * 1e3
                << " ms (row-oriented path), ";
    }
    std::cout << "warm avg " << warm_avg * 1e3 << " ms over "
              << opts.repeat - 1 << " re-execution(s)\n";
  }

  std::cout << result.Count() << " convoy(s)\n";
  for (const convoy::Convoy& c : result) {
    std::cout << "  " << convoy::ToString(c);
    if (opts.verify) {
      std::cout << (convoy::VerifyConvoy(engine.db(), opts.query, c)
                        ? "  [verified]"
                        : "  [FAILED VERIFICATION]");
    }
    std::cout << "\n";
  }
  if (opts.print_stats) std::cout << result.stats() << "\n";
  if (opts.explain_analyze) std::cout << result.ExplainAnalyze();

  if (!opts.trace_out.empty()) {
    std::ofstream out(opts.trace_out);
    if (!out) {
      std::cerr << "cannot write " << opts.trace_out << "\n";
      return kExitIo;
    }
    trace->WriteChromeTrace(out);
    std::cout << "wrote Chrome trace to " << opts.trace_out << "\n";
  }

  if (!opts.report_out.empty()) {
    if (!convoy::SaveResultSetJson(result, opts.report_out)) {
      std::cerr << "cannot write " << opts.report_out << "\n";
      return kExitIo;
    }
    std::cout << "wrote plan + stats + " << result.Count()
              << " convoy(s) to " << opts.report_out << "\n";
  }

  if (!opts.results_out.empty()) {
    const bool json = opts.results_out.size() >= 5 &&
                      opts.results_out.rfind(".json") ==
                          opts.results_out.size() - 5;
    std::ofstream out(opts.results_out);
    if (!out) {
      std::cerr << "cannot write " << opts.results_out << "\n";
      return kExitIo;
    }
    if (json) {
      convoy::SaveConvoysJson(result.convoys(), out);
    } else {
      convoy::SaveConvoysCsv(result.convoys(), out);
    }
    std::cout << "wrote " << result.Count() << " convoy(s) to "
              << opts.results_out << "\n";
  }
  return kExitOk;
}
