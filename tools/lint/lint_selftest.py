#!/usr/bin/env python3
"""Self-test for convoy_lint: every rule must fire on a seeded violation.

Builds a throw-away repo skeleton in a temp directory, seeds exactly the
violations each rule exists to catch, runs the real lint driver over it,
and asserts (a) each rule fires where expected, (b) clean idioms do not
fire, and (c) both suppression forms work. A rule that silently stops
matching — a regex typo, a scope change — turns CI red here rather than
letting violations drift into src/.

Run directly (exit 0 = pass) or via ctest as `lint_selftest`.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

LINT_DIR = Path(__file__).resolve().parent
if str(LINT_DIR) not in sys.path:
    sys.path.insert(0, str(LINT_DIR))

import rules  # noqa: E402
from convoy_lint import lint_paths  # noqa: E402

FAILURES: list[str] = []


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        FAILURES.append(label)


def write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


def fired(findings, rel: str, rule: str) -> bool:
    return any(f.path == rel and f.rule == rule for f in findings)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="convoy_lint_selftest_") as tmp:
        root = Path(tmp)

        # --- seeded violations: one file per rule, in the rule's scope ---
        write(root, "src/core/viol_wallclock.cc",
              "void F() {\n"
              "  auto t0 = std::chrono::steady_clock::now();\n"
              "  (void)t0;\n"
              "}\n")
        write(root, "src/core/viol_rng.cc",
              "int F() { return rand(); }\n")
        write(root, "src/core/viol_unordered.cc",
              "#include <unordered_map>\n"
              "std::unordered_map<int, int> table;\n"
              "int F() {\n"
              "  int sum = 0;\n"
              "  for (const auto& kv : table) sum += kv.second;\n"
              "  return sum;\n"
              "}\n")
        write(root, "src/io/viol_statusor.cc",
              "int F() {\n"
              "  return TryLoadThing().value();\n"
              "}\n")
        write(root, "src/core/viol_statusor_var.cc",
              "int F() {\n"
              "  StatusOr<int> result = TryParse();\n"
              "  return result.value();\n"
              "}\n")
        write(root, "src/core/viol_new.cc",
              "int* F() { return new int(7); }\n")
        write(root, "src/core/viol_thread.cc",
              "#include <thread>\n"
              "void F() {\n"
              "  std::thread worker([] {});\n"
              "  worker.join();\n"
              "}\n")
        write(root, "src/core/viol_guarded.h",
              "#include <mutex>\n"
              "#include <vector>\n"
              "class Box {\n"
              " public:\n"
              "  void Add(int v);\n"
              "  void AddLocked(int v);\n"
              " private:\n"
              "  std::mutex mu_;\n"
              "  std::vector<int> items_;  // GUARDED_BY(mu_)\n"
              "};\n")
        write(root, "src/core/viol_guarded.cc",
              "#include \"viol_guarded.h\"\n"
              "void Box::Add(int v) {\n"
              "  items_.push_back(v);\n"
              "}\n"
              "\n"
              "void Box::AddLocked(int v) {\n"
              "  std::lock_guard<std::mutex> lock(mu_);\n"
              "  items_.push_back(v);\n"
              "}\n")

        # --- clean idioms that must NOT fire ---
        # Out of determinism scope: clocks/RNG allowed outside RESULT_DIRS.
        write(root, "src/util/clean_scope.cc",
              "#include <chrono>\n"
              "double Now() {\n"
              "  return std::chrono::duration<double>(\n"
              "      std::chrono::steady_clock::now().time_since_epoch())\n"
              "      .count();\n"
              "}\n")
        # Threads/new are fine inside src/parallel.
        write(root, "src/parallel/clean_parallel.cc",
              "#include <thread>\n"
              "void Spawn() {\n"
              "  std::thread worker([] {});\n"
              "  worker.join();\n"
              "}\n")
        # Violations inside comments and strings must be invisible.
        write(root, "src/core/clean_stripped.cc",
              "// rand() and std::thread in a comment\n"
              "/* for (auto& kv : some_unordered_map) {} */\n"
              "const char* F() { return \"new int(3) rand()\"; }\n")
        # Keyed lookup (no iteration) on an unordered_map is fine.
        write(root, "src/core/clean_lookup.cc",
              "#include <unordered_map>\n"
              "std::unordered_map<int, int> table;\n"
              "int F(int k) {\n"
              "  auto it = table.find(k);\n"
              "  return it == table.end() ? 0 : it->second;\n"
              "}\n")
        # A checked StatusOr may .value().
        write(root, "src/core/clean_checked.cc",
              "int F() {\n"
              "  StatusOr<int> result = TryParse();\n"
              "  if (!result.ok()) return -1;\n"
              "  return result.value();\n"
              "}\n")

        # --- suppression forms ---
        write(root, "src/core/suppress_same_line.cc",
              "// Seeded entropy is part of this test fixture's contract.\n"
              "int F() { return rand(); }"
              "  // convoy-lint: allow-line(rng)\n")
        write(root, "src/core/suppress_prev_line.cc",
              "int F() {\n"
              "  // justification for the exception goes here\n"
              "  // convoy-lint: allow-line(rng)\n"
              "  return rand();\n"
              "}\n")
        write(root, "src/core/suppress_file.cc",
              "// convoy-lint: allow(wallclock)\n"
              "void F() {\n"
              "  auto t0 = std::chrono::steady_clock::now();\n"
              "  auto t1 = std::chrono::steady_clock::now();\n"
              "  (void)t0; (void)t1;\n"
              "}\n")

        findings = lint_paths(root, ["src"])

        print("rule firing:")
        check(fired(findings, "src/core/viol_wallclock.cc", "wallclock"),
              "wallclock fires on steady_clock::now() in src/core")
        check(fired(findings, "src/core/viol_rng.cc", "rng"),
              "rng fires on rand() in src/core")
        check(fired(findings, "src/core/viol_unordered.cc", "unordered-iter"),
              "unordered-iter fires on range-for over unordered_map")
        check(fired(findings, "src/io/viol_statusor.cc", "statusor-value"),
              "statusor-value fires on chained Try*().value()")
        check(fired(findings, "src/core/viol_statusor_var.cc",
                    "statusor-value"),
              "statusor-value fires on unchecked StatusOr variable")
        check(fired(findings, "src/core/viol_new.cc", "naked-new"),
              "naked-new fires on raw new outside src/parallel")
        check(fired(findings, "src/core/viol_thread.cc", "raw-thread"),
              "raw-thread fires on std::thread outside src/parallel")
        guarded = [f for f in findings
                   if f.path == "src/core/viol_guarded.cc"
                   and f.rule == "guarded-member"]
        check(len(guarded) == 1 and guarded[0].line == 3,
              "guarded-member fires on the unlocked mutation only "
              f"(got {[(f.line) for f in guarded]})")

        print("clean idioms:")
        for rel in ("src/util/clean_scope.cc",
                    "src/parallel/clean_parallel.cc",
                    "src/core/clean_stripped.cc",
                    "src/core/clean_lookup.cc",
                    "src/core/clean_checked.cc"):
            check(not any(f.path == rel for f in findings),
                  f"no findings in {rel}")

        print("suppressions:")
        for rel in ("src/core/suppress_same_line.cc",
                    "src/core/suppress_prev_line.cc",
                    "src/core/suppress_file.cc"):
            check(not any(f.path == rel for f in findings),
                  f"suppressed in {rel}")

        # Every registered rule must have fired somewhere above — a rule
        # whose seed drifted out from under it is a dead rule.
        fired_rules = {f.rule for f in findings}
        for module in rules.ALL_RULES:
            check(module.RULE.name in fired_rules,
                  f"rule `{module.RULE.name}` fired at least once")

    if FAILURES:
        print(f"lint_selftest: {len(FAILURES)} check(s) FAILED",
              file=sys.stderr)
        return 1
    print("lint_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
