"""statusor-value — no unchecked StatusOr::value() in src/.

PR 2's contract: library code surfaces recoverable errors as
Status/StatusOr, and `.value()` on a non-ok StatusOr aborts in release
builds. Tests and examples may call `.value()` freely (a crash there IS
the failure report); inside src/ every StatusOr must be `.ok()`-checked
(or pattern-returned via CONVOY_RETURN_IF_ERROR) before its value is
taken.

Detection, AST-light:
  * a variable declared `StatusOr<...> v = ...` (or `auto v = fn(...)`
    where fn matches the Try*/Prepare/Execute naming convention) whose
    `.value()` is taken with no earlier `v.ok()` / `!v.ok()` /
    `CONVOY_RETURN_IF_ERROR(v` in the same function region;
  * a direct chained call `TrySomething(...).value()` /
    `Prepare(...).value()` / `Execute(...).value()` — there is no way
    to have checked a temporary.
"""

from __future__ import annotations

import re

from lintcommon import Finding, Rule, SourceFile, function_start_line

RULE = Rule(
    name="statusor-value",
    description="no .value() on an unchecked StatusOr inside src/ "
    "(check .ok() first; .value() aborts on error in release builds)",
    scope="src/ (tests, tools and examples may .value() freely)",
)

DECL_RE = re.compile(r"\bStatusOr\s*<[^;{}]*>\s*(\w+)\s*[=({]")
AUTO_TRY_RE = re.compile(
    r"\bauto\s+(\w+)\s*=\s*[\w.\->:]*(?:Try\w*|Prepare|Execute)\s*\("
)
CHAINED_RE = re.compile(
    r"[\w.\->:]*\b(?:Try\w+|Prepare|Execute)\s*\([^;]*\)\s*\.\s*value\s*\(\)"
)


def check(source: SourceFile) -> list[Finding]:
    if not source.path.startswith("src/"):
        return []
    findings = []
    statusor_vars: dict[str, int] = {}  # name -> declaration line (1-based)
    collapsed = source.code_lines
    for lineno, code in enumerate(collapsed, start=1):
        for m in DECL_RE.finditer(code):
            statusor_vars[m.group(1)] = lineno
        for m in AUTO_TRY_RE.finditer(code):
            statusor_vars[m.group(1)] = lineno
        if CHAINED_RE.search(code):
            findings.append(
                Finding(
                    source.path,
                    lineno,
                    RULE.name,
                    ".value() chained onto a StatusOr-returning call; the "
                    "temporary cannot have been .ok()-checked — bind it and "
                    "check, or propagate with CONVOY_RETURN_IF_ERROR",
                )
            )
    for name, decl_line in statusor_vars.items():
        use_re = re.compile(
            rf"(?:\b|std::move\s*\(\s*){re.escape(name)}\s*\)?"
            rf"\s*\.\s*value\s*\(\)"
        )
        check_re = re.compile(
            rf"\b{re.escape(name)}\s*\.\s*ok\s*\(\)"
            rf"|CONVOY_RETURN_IF_ERROR\s*\(\s*{re.escape(name)}\b"
            rf"|\bif\s*\(\s*!?\s*{re.escape(name)}\s*\)"
        )
        for lineno in range(decl_line, len(collapsed) + 1):
            code = collapsed[lineno - 1]
            if not use_re.search(code):
                continue
            region_start = max(
                function_start_line(collapsed, lineno), decl_line
            )
            region = collapsed[region_start - 1 : lineno]
            if any(check_re.search(line) for line in region):
                continue
            findings.append(
                Finding(
                    source.path,
                    lineno,
                    RULE.name,
                    f"`{name}.value()` without a preceding `{name}.ok()` "
                    "check in this function; non-ok aborts in release "
                    "builds — check or propagate the status first",
                )
            )
    return findings
