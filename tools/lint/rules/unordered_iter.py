"""unordered-iter — no iteration over hash containers in result paths.

`std::unordered_map` / `std::unordered_set` iteration order is
unspecified and varies with insertion history and standard-library
version. Feeding that order into anything that reaches a query result
(cluster input order, candidate emission, convoy assembly) silently
breaks the bit-identical-results guarantee — the exact failure class
StreamingCmc had when it gathered its per-tick snapshot straight out of
an unordered_map. Lookups (find/count/operator[]) are fine; iteration
must either move to an ordered container, sort afterwards, or carry a
justified allow-line (e.g. a fold whose result is order-independent).

Detection: names declared as unordered containers in the file or its
paired header, then range-for'd or .begin()-iterated anywhere in the
file. Structured bindings over the container count.
"""

from __future__ import annotations

import re

from lintcommon import Finding, Rule, SourceFile, iter_code

RULE = Rule(
    name="unordered-iter",
    description="no iteration over std::unordered_{map,set} in "
    "result-producing code (unspecified order breaks determinism)",
    scope="src/core, src/cluster, src/traj, src/query",
)

DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"(\w+)\s*[;={(]"
)


def declared_unordered_names(source: SourceFile) -> set[str]:
    text = "\n".join(source.code_lines) + "\n" + source.sibling_header_text()
    # Multi-line declarations: collapse whitespace so the template
    # argument list and the declared name can span lines.
    collapsed = re.sub(r"\s+", " ", text)
    return {m.group(1) for m in DECL_RE.finditer(collapsed)}


def check(source: SourceFile) -> list[Finding]:
    if not source.in_result_dirs():
        return []
    names = declared_unordered_names(source)
    if not names:
        return []
    alt = "|".join(re.escape(n) for n in sorted(names))
    range_for = re.compile(rf"for\s*\([^;()]*:\s*(?:\*?)({alt})\s*\)")
    begin_iter = re.compile(rf"\b({alt})\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")
    findings = []
    for lineno, code in iter_code(source):
        for pattern in (range_for, begin_iter):
            m = pattern.search(code)
            if m:
                findings.append(
                    Finding(
                        source.path,
                        lineno,
                        RULE.name,
                        f"iteration over unordered container `{m.group(1)}`"
                        " in result-producing code; order is unspecified — "
                        "sort first, use an ordered container, or justify "
                        "with allow-line if the fold is order-independent",
                    )
                )
                break
    return findings
