"""naked-new — no raw `new` outside src/parallel.

Ownership in this codebase is expressed with containers and
make_unique/make_shared; a naked `new` is either a leak-in-waiting or a
hidden ownership transfer a reviewer has to chase. src/parallel is the
one sanctioned home for low-level lifetime tricks the pool might need
(it currently needs none — the exemption simply mirrors raw-thread's).
Placement new is allowed: arena code constructs in place by design.
"""

from __future__ import annotations

import re

from lintcommon import Finding, Rule, SourceFile, iter_code

RULE = Rule(
    name="naked-new",
    description="no raw `new` expressions outside src/parallel "
    "(use make_unique/make_shared or containers)",
    scope="src/ except src/parallel",
)

# `new Type`, `new (std::nothrow) Type` — but not placement new into a
# buffer (`new (ptr) Type`), not `operator new` declarations, and not
# identifiers that merely end in "new".
NEW_RE = re.compile(r"(?<![\w.])new\s+(?!\(\s*\w+\s*\)\s*\w)[\w:(<]")
OPERATOR_NEW_RE = re.compile(r"operator\s+new")


def check(source: SourceFile) -> list[Finding]:
    if not source.path.startswith("src/") or source.path.startswith(
        "src/parallel/"
    ):
        return []
    findings = []
    for lineno, code in iter_code(source):
        if OPERATOR_NEW_RE.search(code):
            continue
        if NEW_RE.search(code):
            findings.append(
                Finding(
                    source.path,
                    lineno,
                    RULE.name,
                    "raw `new` expression; express ownership with "
                    "make_unique/make_shared or a container",
                )
            )
    return findings
