"""rng — no nondeterministically seeded randomness in result paths.

A `rand()` / `std::random_device` / unseeded engine in
src/core|cluster|traj|query makes two identical queries return different
convoys. Sampling algorithms (MC2) must take an explicit seed and draw
through util/random so a run can be reproduced bit-for-bit; datagen is
out of scope because generated *inputs* are allowed (and required) to be
seeded there.
"""

from __future__ import annotations

import re

from lintcommon import Finding, Rule, SourceFile, iter_code

RULE = Rule(
    name="rng",
    description="no rand()/srand()/std::random_device/default_random_engine "
    "in result-producing code (seeded util/random only)",
    scope="src/core, src/cluster, src/traj, src/query",
)

PATTERN = re.compile(
    r"\brand\s*\("
    r"|\bsrand\s*\("
    r"|std::random_device\b"
    r"|\brandom_device\b"
    r"|std::default_random_engine\b"
)


def check(source: SourceFile) -> list[Finding]:
    if not source.in_result_dirs():
        return []
    findings = []
    for lineno, code in iter_code(source):
        m = PATTERN.search(code)
        if m:
            findings.append(
                Finding(
                    source.path,
                    lineno,
                    RULE.name,
                    f"nondeterministic randomness `{m.group(0).strip()}` in "
                    "result-producing code; draw from an explicitly seeded "
                    "util/random engine instead",
                )
            )
    return findings
