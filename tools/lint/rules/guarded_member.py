"""guarded-member — mutations of GUARDED_BY members need their lock.

Members whose declaration carries a `// GUARDED_BY(mutex_name)` comment
(the repo's lightweight stand-in for clang's thread-safety annotations,
which plain comments keep toolchain-independent) may only be mutated in
functions that visibly take that mutex first. The check is textual but
catches the real mistake class: a new code path that writes a guarded
member with no lock anywhere in sight.

Detection: annotations are harvested from the file AND its paired
header (declarations usually live in the .h, mutations in the .cc).
A mutation is an assignment, compound assignment, increment, or a call
of a known mutating container method on the member. It passes if,
earlier in the same function region (clang-format function boundaries —
see lintcommon.function_start_line), a lock_guard / unique_lock /
scoped_lock / .lock() names the guarding mutex. Re-lock patterns
(unique_lock released and re-acquired around a build) pass by
construction: the lock statement still appears earlier in the region.

Limitations (by design, kept honest by the self-test): a function that
locks, unlocks, and then mutates passes the textual check — TSan owns
that class; this rule owns the "no lock at all" class.
"""

from __future__ import annotations

import re

from lintcommon import Finding, Rule, SourceFile, function_start_line

RULE = Rule(
    name="guarded-member",
    description="members annotated // GUARDED_BY(mu) may only be mutated "
    "in functions that take `mu` (lock_guard/unique_lock/scoped_lock)",
    scope="all linted files (annotations harvested from paired headers)",
)

# The declared name is the last identifier before the `;` (optionally
# with an `= init` or `{init}`); multi-line declarations work because the
# annotation goes on the line holding `name;`.
ANNOTATION_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;{}]*\})?;.*//.*GUARDED_BY\((\w+)\)"
)

MUTATORS = (
    "push_back|emplace_back|emplace|clear|erase|insert|resize|assign|"
    "pop_back|pop_front|push_front|reserve|swap|reset|store|fetch_add|"
    "fetch_sub"
)


def harvest_annotations(raw_text: str) -> dict[str, str]:
    """member name -> mutex name, from GUARDED_BY comments."""
    out = {}
    for line in raw_text.split("\n"):
        m = ANNOTATION_RE.search(line)
        if m:
            out[m.group(1)] = m.group(2)
    return out


def check(source: SourceFile) -> list[Finding]:
    annotations = harvest_annotations("\n".join(source.lines))
    annotations.update(harvest_annotations(source.sibling_header_raw()))
    if not annotations:
        return []
    findings = []
    for member, mutex in annotations.items():
        esc = re.escape(member)
        # `member = ...` / `member += ...` / `++member` / `member.clear()`
        # — optionally reached through an object path (cache.grids, or
        # ptr->grids). `member ==` and `member !=` are reads.
        mutation_re = re.compile(
            rf"(?:^|[^\w.])(?:[\w]+\s*(?:\.|->)\s*)*{esc}\s*"
            rf"(?:=(?!=)|\+=|-=|\*=|/=|\+\+|--|(?:\.|->)\s*(?:{MUTATORS})"
            rf"\s*\(|\[)"
            rf"|(?:\+\+|--)\s*{esc}\b"
        )
        lock_re = re.compile(
            rf"(?:lock_guard|unique_lock|scoped_lock)\s*(?:<[^>]*>)?\s*"
            rf"\w*\s*[({{][^)}}]*\b{re.escape(mutex)}\b"
            rf"|\b{re.escape(mutex)}\s*(?:\.|->)\s*lock\s*\(\)"
        )
        for lineno, code in enumerate(source.code_lines, start=1):
            m = mutation_re.search(code)
            if not m:
                continue
            # Skip the declaration itself (initialization needs no lock;
            # neither do constructor bodies — but textual function-region
            # scanning already treats ctors like any function, and ctors
            # that lock are rare; declarations are identified by the
            # annotation comment on the raw line).
            if "GUARDED_BY" in source.lines[lineno - 1]:
                continue
            start = function_start_line(source.code_lines, lineno)
            region = source.code_lines[start - 1 : lineno]
            if any(lock_re.search(r) for r in region):
                continue
            findings.append(
                Finding(
                    source.path,
                    lineno,
                    RULE.name,
                    f"`{member}` is GUARDED_BY({mutex}) but this function "
                    f"region mutates it without taking `{mutex}` first",
                )
            )
    return findings
