"""raw-thread — threads are created only by src/parallel.

Every parallel result in this repo is bit-identical to serial because
work is partitioned into deterministic, index-ordered chunks by ONE
subsystem: src/parallel's ThreadPool / ParallelMap / ParallelFor. A
std::thread spawned anywhere else bypasses the chunking discipline, the
pool's "pool-worker" trace labeling, and the exception funneling — and
is exactly how nondeterministic interleavings sneak into result paths
(PR 3 already consolidated cuts_refine's hand-rolled threads onto the
pool for this reason). Tests may spawn threads; they exist to create
hostile interleavings.
"""

from __future__ import annotations

import re

from lintcommon import Finding, Rule, SourceFile, iter_code

RULE = Rule(
    name="raw-thread",
    description="no std::thread/std::jthread/pthread_create outside "
    "src/parallel (route work through ThreadPool/ParallelMap)",
    scope="src/ except src/parallel",
)

PATTERN = re.compile(
    r"std::thread\b|std::jthread\b|\bpthread_create\s*\("
)
# std::thread::hardware_concurrency() is a capability query, not a spawn.
QUERY_RE = re.compile(r"std::thread::hardware_concurrency")


def check(source: SourceFile) -> list[Finding]:
    if not source.path.startswith("src/") or source.path.startswith(
        "src/parallel/"
    ):
        return []
    findings = []
    for lineno, code in iter_code(source):
        if QUERY_RE.search(code):
            code = QUERY_RE.sub("", code)
        m = PATTERN.search(code)
        if m:
            findings.append(
                Finding(
                    source.path,
                    lineno,
                    RULE.name,
                    f"`{m.group(0).strip()}` outside src/parallel; spawn "
                    "workers through ThreadPool/ParallelMap so chunked "
                    "determinism and trace labeling hold",
                )
            )
    return findings
