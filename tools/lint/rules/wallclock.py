"""wallclock — no wall-clock reads in result-producing code.

Convoy results must be a pure function of (database, query, thread
count). A clock read in src/core|cluster|traj|query is either dead code
or a determinism bug waiting to branch on elapsed time (timeouts that
change which candidates survive, time-bucketed caches, ...). Telemetry
is the sanctioned exception and has its own abstractions: util/stopwatch
(DiscoveryStats phase timings) and obs/trace (spans/series), both of
which live outside the scoped directories and are excluded from the
determinism guarantee by contract.
"""

from __future__ import annotations

import re

from lintcommon import Finding, Rule, SourceFile, iter_code

RULE = Rule(
    name="wallclock",
    description="no std::chrono / C clock reads in result-producing code "
    "(use util/stopwatch or obs/trace for telemetry)",
    scope="src/core, src/cluster, src/traj, src/query",
)

PATTERN = re.compile(
    r"std::chrono\b"
    r"|\bsteady_clock\b"
    r"|\bsystem_clock\b"
    r"|\bhigh_resolution_clock\b"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\bclock\s*\(\s*\)"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)


def check(source: SourceFile) -> list[Finding]:
    if not source.in_result_dirs():
        return []
    findings = []
    for lineno, code in iter_code(source):
        m = PATTERN.search(code)
        if m:
            findings.append(
                Finding(
                    source.path,
                    lineno,
                    RULE.name,
                    f"wall-clock read `{m.group(0).strip()}` in "
                    "result-producing code; results must not depend on "
                    "time — route telemetry through obs/trace or "
                    "util/stopwatch instead",
                )
            )
    return findings
