"""Rule registry for convoy_lint.

Adding a rule: create a module here exposing `RULE` (lintcommon.Rule)
and `check(source: SourceFile) -> list[Finding]`, append it to
ALL_RULES, and add a seeded-violation case to lint_selftest.py — the
self-test fails if any registered rule never fires.
"""

from rules import (
    guarded_member,
    naked_new,
    raw_thread,
    rng,
    statusor_value,
    unordered_iter,
    wallclock,
)

ALL_RULES = [
    wallclock,
    rng,
    unordered_iter,
    statusor_value,
    naked_new,
    raw_thread,
    guarded_member,
]
