"""Shared types and text-analysis helpers for convoy_lint rules.

Rule modules import from here (never from convoy_lint, which imports the
rule registry — keeping this a leaf module avoids the cycle).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

#: Directories whose code produces query results — the determinism rules
#: (wallclock / rng / unordered-iter) apply here. util/, obs/, datagen/,
#: io/, simplify/, geom/ and parallel/ are out of scope: telemetry and
#: seeded generation may use clocks and RNGs, and none of them decide
#: which convoys a query returns.
RESULT_DIRS = ("src/core/", "src/cluster/", "src/traj/", "src/query/",
               "src/simd/")


@dataclass(frozen=True)
class Rule:
    """Rule metadata: stable id, one-line rationale, path scope."""

    name: str
    description: str
    scope: str  # human-readable scope note for --list-rules


@dataclass
class Finding:
    """One rule violation: file, 1-based line, rule id, message."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """A parsed source file as the rules see it.

    `lines` is the raw text split into lines; `code_lines` is the same
    text with comments and string/char literals blanked out (replaced by
    spaces, so line numbers and columns survive). Rules match against
    `code_lines` so commented-out code and words inside strings can never
    trip them, and read `lines` only for annotations that intentionally
    live in comments (GUARDED_BY, suppression directives).
    """

    path: str  # repo-root-relative, forward slashes
    abs_path: Path
    lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)
    file_allows: set[str] = field(default_factory=set)
    line_allows: dict[int, set[str]] = field(default_factory=dict)

    def allowed(self, rule: str, line: int) -> bool:
        """True when `rule` is suppressed at 1-based `line`."""
        return rule in self.file_allows or rule in self.line_allows.get(
            line, set()
        )

    def in_result_dirs(self) -> bool:
        return self.path.startswith(RESULT_DIRS)

    def sibling_header_text(self) -> str:
        """Stripped code of the paired .h for a .cc file ("" if none).

        Member declarations usually live in the header while mutations
        live in the .cc; rules that correlate the two (unordered-iter,
        guarded-member) scan both.
        """
        if not self.path.endswith(".cc"):
            return ""
        header = self.abs_path.with_suffix(".h")
        if not header.is_file():
            return ""
        return strip_comments_and_strings(
            header.read_text(encoding="utf-8", errors="replace")
        )

    def sibling_header_raw(self) -> str:
        """Raw text of the paired .h (comments intact, for annotations)."""
        if not self.path.endswith(".cc"):
            return ""
        header = self.abs_path.with_suffix(".h")
        if not header.is_file():
            return ""
        return header.read_text(encoding="utf-8", errors="replace")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving layout.

    Handles //, /* */, "..." with escapes, '...' with escapes, and raw
    strings R"delim(...)delim". Every stripped character becomes a space
    (newlines are kept), so offsets in the result line up with the
    original — rules report real line numbers.
    """
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                # R"delim( ... )delim" — the only string form that can
                # contain unescaped quotes and newlines.
                m = re.match(r'\AR"([^\s()\\]{0,16})\(', text[i - 1 : i + 20])
                if i > 0 and text[i - 1] == "R" and m:
                    state = RAW
                    raw_terminator = ")" + m.group(1) + '"'
                    i += 1
                    continue
                state = STRING
                i += 1
                continue
            if c == "'":
                # Digit separators (1'000'000) are not char literals.
                if i > 0 and (text[i - 1].isdigit()):
                    i += 1
                    continue
                state = CHAR
                i += 1
                continue
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
            else:
                out[i] = " "
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\" and nxt:
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
        elif state == RAW:
            if text.startswith(raw_terminator, i):
                for j in range(len(raw_terminator)):
                    out[i + j] = " "
                i += len(raw_terminator)
                state = NORMAL
                continue
            if c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


def function_start_line(code_lines: list[str], at_line: int) -> int:
    """1-based line where the function enclosing `at_line` begins.

    Heuristic for clang-format'd code: function bodies are delimited by a
    closing brace in column 0 (`}` alone, or `};` for classes). The
    enclosing function of a line is everything after the most recent such
    boundary. Lambdas nested inside a function stay inside its region —
    exactly what the lock-before-mutation and checked-before-value scans
    want.
    """
    for idx in range(at_line - 2, -1, -1):
        stripped = code_lines[idx].rstrip()
        if stripped in ("}", "};") and code_lines[idx].startswith("}"):
            return idx + 2
    return 1


def iter_code(source: SourceFile):
    """Yields (1-based line number, stripped code line)."""
    yield from enumerate(source.code_lines, start=1)
