#!/usr/bin/env python3
"""convoy_lint — repo-specific invariant checks clang-tidy cannot know.

The repo's headline guarantee is *determinism*: bit-identical convoy
results and trace counters at any thread count. That guarantee rests on
project-specific contracts (no wall-clock or RNG in result-producing
code, no iteration-order dependence on hash containers, every StatusOr
checked before use, threads only via src/parallel, mutex-guarded members
mutated only under their mutex). This linter machine-checks them with
fast, AST-light text analysis: comments and string literals are stripped
first, so the rules only ever see code.

Usage:
    tools/lint/convoy_lint.py [--root REPO_ROOT] [PATH ...]

PATH defaults to `src`. Paths are checked recursively for *.h / *.cc.
Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.

Suppressions (always carry a justification comment next to them):
  * file-level:  `// convoy-lint: allow(<rule>)` anywhere in the file
                 disables <rule> for the whole file;
  * line-level:  `// convoy-lint: allow-line(<rule>)` disables <rule> on
                 that line and, when the directive is the only thing on
                 its line, on the following line.

Rules live in tools/lint/rules/ — one module per rule, registered in
rules/__init__.py. Each module exposes RULE (metadata) and
check(source) -> [Finding]. `tools/lint/lint_selftest.py` seeds one
violation per rule and asserts it fires, so a rule that silently stops
matching fails CI.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

LINT_DIR = Path(__file__).resolve().parent
if str(LINT_DIR) not in sys.path:
    sys.path.insert(0, str(LINT_DIR))

import rules  # noqa: E402  (needs the sys.path fix-up above)
from lintcommon import (  # noqa: E402
    Finding,
    SourceFile,
    strip_comments_and_strings,
)

ALLOW_FILE_RE = re.compile(r"convoy-lint:\s*allow\(([\w\-, ]+)\)")
ALLOW_LINE_RE = re.compile(r"convoy-lint:\s*allow-line\(([\w\-, ]+)\)")


def parse_directives(source: SourceFile) -> None:
    """Collects allow()/allow-line() suppressions from the raw lines."""
    for idx, line in enumerate(source.lines, start=1):
        comment = line.partition("//")[2]
        if not comment:
            continue
        for m in ALLOW_FILE_RE.finditer(comment):
            for rule in m.group(1).split(","):
                source.file_allows.add(rule.strip())
        for m in ALLOW_LINE_RE.finditer(comment):
            names = {r.strip() for r in m.group(1).split(",")}
            source.line_allows.setdefault(idx, set()).update(names)
            # A directive-only line also suppresses the line after it, so
            # the justification comment can sit above the code it excuses.
            if line.partition("//")[0].strip() == "":
                source.line_allows.setdefault(idx + 1, set()).update(names)


def load_source(abs_path: Path, rel_path: str) -> SourceFile:
    text = abs_path.read_text(encoding="utf-8", errors="replace")
    source = SourceFile(path=rel_path, abs_path=abs_path)
    source.lines = text.split("\n")
    source.code_lines = strip_comments_and_strings(text).split("\n")
    parse_directives(source)
    return source


def discover_files(root: Path, targets: list[str]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        path = (root / target).resolve()
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*"))
                if p.suffix in (".h", ".cc") and p.is_file()
            )
        else:
            raise FileNotFoundError(f"no such lint target: {target}")
    return files


def lint_paths(root: Path, targets: list[str]) -> list[Finding]:
    """Lints `targets` (files or directories) under repo root `root`."""
    findings: list[Finding] = []
    for abs_path in discover_files(root, targets):
        rel = abs_path.relative_to(root).as_posix()
        source = load_source(abs_path, rel)
        for module in rules.ALL_RULES:
            rule_id = module.RULE.name
            for finding in module.check(source):
                if not source.allowed(rule_id, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint, relative to --root "
        "(default: src)",
    )
    parser.add_argument(
        "--root",
        default=str(LINT_DIR.parent.parent),
        help="repository root rule scopes are resolved against",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for module in rules.ALL_RULES:
            rule = module.RULE
            print(f"{rule.name}: {rule.description} (scope: {rule.scope})")
        return 0

    try:
        findings = lint_paths(Path(args.root).resolve(), args.paths)
    except FileNotFoundError as err:
        print(f"convoy_lint: {err}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"convoy_lint: {len(findings)} finding(s). Suppress a "
            "justified exception with `// convoy-lint: allow-line(<rule>)`.",
            file=sys.stderr,
        )
        return 1
    print("convoy_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
