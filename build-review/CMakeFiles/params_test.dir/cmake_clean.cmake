file(REMOVE_RECURSE
  "CMakeFiles/params_test.dir/tests/params_test.cc.o"
  "CMakeFiles/params_test.dir/tests/params_test.cc.o.d"
  "tests/params_test"
  "tests/params_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
