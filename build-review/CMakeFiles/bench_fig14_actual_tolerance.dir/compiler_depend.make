# Empty compiler generated dependencies file for bench_fig14_actual_tolerance.
# This may be replaced when dependencies are built.
