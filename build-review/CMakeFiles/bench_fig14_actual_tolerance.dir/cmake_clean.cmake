file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_actual_tolerance.dir/bench/fig14_actual_tolerance.cc.o"
  "CMakeFiles/bench_fig14_actual_tolerance.dir/bench/fig14_actual_tolerance.cc.o.d"
  "bench/fig14_actual_tolerance"
  "bench/fig14_actual_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_actual_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
