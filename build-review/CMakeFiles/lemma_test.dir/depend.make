# Empty dependencies file for lemma_test.
# This may be replaced when dependencies are built.
