file(REMOVE_RECURSE
  "CMakeFiles/lemma_test.dir/tests/lemma_test.cc.o"
  "CMakeFiles/lemma_test.dir/tests/lemma_test.cc.o.d"
  "tests/lemma_test"
  "tests/lemma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
