# Empty dependencies file for convoy_set_test.
# This may be replaced when dependencies are built.
