file(REMOVE_RECURSE
  "CMakeFiles/convoy_set_test.dir/tests/convoy_set_test.cc.o"
  "CMakeFiles/convoy_set_test.dir/tests/convoy_set_test.cc.o.d"
  "tests/convoy_set_test"
  "tests/convoy_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convoy_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
