file(REMOVE_RECURSE
  "CMakeFiles/convoy_cli.dir/tools/convoy_cli.cc.o"
  "CMakeFiles/convoy_cli.dir/tools/convoy_cli.cc.o.d"
  "convoy_cli"
  "convoy_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convoy_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
