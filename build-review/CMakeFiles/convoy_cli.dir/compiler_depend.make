# Empty compiler generated dependencies file for convoy_cli.
# This may be replaced when dependencies are built.
