# Empty dependencies file for geom_box_test.
# This may be replaced when dependencies are built.
