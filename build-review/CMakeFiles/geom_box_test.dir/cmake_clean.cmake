file(REMOVE_RECURSE
  "CMakeFiles/geom_box_test.dir/tests/geom_box_test.cc.o"
  "CMakeFiles/geom_box_test.dir/tests/geom_box_test.cc.o.d"
  "tests/geom_box_test"
  "tests/geom_box_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
