file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cmc_vs_cuts.dir/bench/fig12_cmc_vs_cuts.cc.o"
  "CMakeFiles/bench_fig12_cmc_vs_cuts.dir/bench/fig12_cmc_vs_cuts.cc.o.d"
  "bench/fig12_cmc_vs_cuts"
  "bench/fig12_cmc_vs_cuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cmc_vs_cuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
