# Empty dependencies file for bench_fig12_cmc_vs_cuts.
# This may be replaced when dependencies are built.
