# Empty dependencies file for convoy_lib.
# This may be replaced when dependencies are built.
