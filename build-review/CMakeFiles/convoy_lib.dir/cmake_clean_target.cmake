file(REMOVE_RECURSE
  "libconvoy_lib.a"
)
