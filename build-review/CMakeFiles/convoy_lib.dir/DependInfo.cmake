
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/dbscan.cc" "CMakeFiles/convoy_lib.dir/src/cluster/dbscan.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/cluster/dbscan.cc.o.d"
  "/root/repo/src/cluster/grid_index.cc" "CMakeFiles/convoy_lib.dir/src/cluster/grid_index.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/cluster/grid_index.cc.o.d"
  "/root/repo/src/cluster/polyline_dbscan.cc" "CMakeFiles/convoy_lib.dir/src/cluster/polyline_dbscan.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/cluster/polyline_dbscan.cc.o.d"
  "/root/repo/src/cluster/str_tree.cc" "CMakeFiles/convoy_lib.dir/src/cluster/str_tree.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/cluster/str_tree.cc.o.d"
  "/root/repo/src/core/candidate.cc" "CMakeFiles/convoy_lib.dir/src/core/candidate.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/candidate.cc.o.d"
  "/root/repo/src/core/cmc.cc" "CMakeFiles/convoy_lib.dir/src/core/cmc.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/cmc.cc.o.d"
  "/root/repo/src/core/convoy_set.cc" "CMakeFiles/convoy_lib.dir/src/core/convoy_set.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/convoy_set.cc.o.d"
  "/root/repo/src/core/cuts.cc" "CMakeFiles/convoy_lib.dir/src/core/cuts.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/cuts.cc.o.d"
  "/root/repo/src/core/cuts_filter.cc" "CMakeFiles/convoy_lib.dir/src/core/cuts_filter.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/cuts_filter.cc.o.d"
  "/root/repo/src/core/cuts_refine.cc" "CMakeFiles/convoy_lib.dir/src/core/cuts_refine.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/cuts_refine.cc.o.d"
  "/root/repo/src/core/discovery_stats.cc" "CMakeFiles/convoy_lib.dir/src/core/discovery_stats.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/discovery_stats.cc.o.d"
  "/root/repo/src/core/engine.cc" "CMakeFiles/convoy_lib.dir/src/core/engine.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/engine.cc.o.d"
  "/root/repo/src/core/flock.cc" "CMakeFiles/convoy_lib.dir/src/core/flock.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/flock.cc.o.d"
  "/root/repo/src/core/mc2.cc" "CMakeFiles/convoy_lib.dir/src/core/mc2.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/mc2.cc.o.d"
  "/root/repo/src/core/params.cc" "CMakeFiles/convoy_lib.dir/src/core/params.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/params.cc.o.d"
  "/root/repo/src/core/streaming.cc" "CMakeFiles/convoy_lib.dir/src/core/streaming.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/streaming.cc.o.d"
  "/root/repo/src/core/validate.cc" "CMakeFiles/convoy_lib.dir/src/core/validate.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/validate.cc.o.d"
  "/root/repo/src/core/verify.cc" "CMakeFiles/convoy_lib.dir/src/core/verify.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/core/verify.cc.o.d"
  "/root/repo/src/datagen/convoy_planter.cc" "CMakeFiles/convoy_lib.dir/src/datagen/convoy_planter.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/datagen/convoy_planter.cc.o.d"
  "/root/repo/src/datagen/movement.cc" "CMakeFiles/convoy_lib.dir/src/datagen/movement.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/datagen/movement.cc.o.d"
  "/root/repo/src/datagen/road_network.cc" "CMakeFiles/convoy_lib.dir/src/datagen/road_network.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/datagen/road_network.cc.o.d"
  "/root/repo/src/datagen/scenarios.cc" "CMakeFiles/convoy_lib.dir/src/datagen/scenarios.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/datagen/scenarios.cc.o.d"
  "/root/repo/src/geom/box.cc" "CMakeFiles/convoy_lib.dir/src/geom/box.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/geom/box.cc.o.d"
  "/root/repo/src/geom/distance.cc" "CMakeFiles/convoy_lib.dir/src/geom/distance.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/geom/distance.cc.o.d"
  "/root/repo/src/geom/segment.cc" "CMakeFiles/convoy_lib.dir/src/geom/segment.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/geom/segment.cc.o.d"
  "/root/repo/src/io/csv.cc" "CMakeFiles/convoy_lib.dir/src/io/csv.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/io/csv.cc.o.d"
  "/root/repo/src/io/dataset_report.cc" "CMakeFiles/convoy_lib.dir/src/io/dataset_report.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/io/dataset_report.cc.o.d"
  "/root/repo/src/io/result_io.cc" "CMakeFiles/convoy_lib.dir/src/io/result_io.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/io/result_io.cc.o.d"
  "/root/repo/src/parallel/parallel_runner.cc" "CMakeFiles/convoy_lib.dir/src/parallel/parallel_runner.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/parallel/parallel_runner.cc.o.d"
  "/root/repo/src/parallel/thread_pool.cc" "CMakeFiles/convoy_lib.dir/src/parallel/thread_pool.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/parallel/thread_pool.cc.o.d"
  "/root/repo/src/simplify/douglas_peucker.cc" "CMakeFiles/convoy_lib.dir/src/simplify/douglas_peucker.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/simplify/douglas_peucker.cc.o.d"
  "/root/repo/src/simplify/dp_plus.cc" "CMakeFiles/convoy_lib.dir/src/simplify/dp_plus.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/simplify/dp_plus.cc.o.d"
  "/root/repo/src/simplify/dp_star.cc" "CMakeFiles/convoy_lib.dir/src/simplify/dp_star.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/simplify/dp_star.cc.o.d"
  "/root/repo/src/simplify/simplified_trajectory.cc" "CMakeFiles/convoy_lib.dir/src/simplify/simplified_trajectory.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/simplify/simplified_trajectory.cc.o.d"
  "/root/repo/src/simplify/simplifier.cc" "CMakeFiles/convoy_lib.dir/src/simplify/simplifier.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/simplify/simplifier.cc.o.d"
  "/root/repo/src/traj/cleaning.cc" "CMakeFiles/convoy_lib.dir/src/traj/cleaning.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/traj/cleaning.cc.o.d"
  "/root/repo/src/traj/database.cc" "CMakeFiles/convoy_lib.dir/src/traj/database.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/traj/database.cc.o.d"
  "/root/repo/src/traj/interpolate.cc" "CMakeFiles/convoy_lib.dir/src/traj/interpolate.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/traj/interpolate.cc.o.d"
  "/root/repo/src/traj/resample.cc" "CMakeFiles/convoy_lib.dir/src/traj/resample.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/traj/resample.cc.o.d"
  "/root/repo/src/traj/trajectory.cc" "CMakeFiles/convoy_lib.dir/src/traj/trajectory.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/traj/trajectory.cc.o.d"
  "/root/repo/src/util/random.cc" "CMakeFiles/convoy_lib.dir/src/util/random.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/convoy_lib.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/convoy_lib.dir/src/util/status.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "CMakeFiles/convoy_lib.dir/src/util/stopwatch.cc.o" "gcc" "CMakeFiles/convoy_lib.dir/src/util/stopwatch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
