# Empty dependencies file for carpool.
# This may be replaced when dependencies are built.
