file(REMOVE_RECURSE
  "CMakeFiles/carpool.dir/examples/carpool.cpp.o"
  "CMakeFiles/carpool.dir/examples/carpool.cpp.o.d"
  "examples/carpool"
  "examples/carpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
