# Empty compiler generated dependencies file for bench_fig13_cost_breakdown.
# This may be replaced when dependencies are built.
