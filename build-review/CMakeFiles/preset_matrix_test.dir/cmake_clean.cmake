file(REMOVE_RECURSE
  "CMakeFiles/preset_matrix_test.dir/tests/preset_matrix_test.cc.o"
  "CMakeFiles/preset_matrix_test.dir/tests/preset_matrix_test.cc.o.d"
  "tests/preset_matrix_test"
  "tests/preset_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preset_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
