# Empty compiler generated dependencies file for preset_matrix_test.
# This may be replaced when dependencies are built.
