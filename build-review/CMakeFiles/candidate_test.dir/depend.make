# Empty dependencies file for candidate_test.
# This may be replaced when dependencies are built.
