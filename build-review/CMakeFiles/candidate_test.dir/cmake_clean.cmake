file(REMOVE_RECURSE
  "CMakeFiles/candidate_test.dir/tests/candidate_test.cc.o"
  "CMakeFiles/candidate_test.dir/tests/candidate_test.cc.o.d"
  "tests/candidate_test"
  "tests/candidate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
