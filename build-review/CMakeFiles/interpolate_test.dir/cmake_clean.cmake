file(REMOVE_RECURSE
  "CMakeFiles/interpolate_test.dir/tests/interpolate_test.cc.o"
  "CMakeFiles/interpolate_test.dir/tests/interpolate_test.cc.o.d"
  "tests/interpolate_test"
  "tests/interpolate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpolate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
