# Empty dependencies file for geom_distance_test.
# This may be replaced when dependencies are built.
