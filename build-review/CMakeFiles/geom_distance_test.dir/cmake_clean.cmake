file(REMOVE_RECURSE
  "CMakeFiles/geom_distance_test.dir/tests/geom_distance_test.cc.o"
  "CMakeFiles/geom_distance_test.dir/tests/geom_distance_test.cc.o.d"
  "tests/geom_distance_test"
  "tests/geom_distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
