# Empty dependencies file for bench_fig15_simplification.
# This may be replaced when dependencies are built.
