file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_simplification.dir/bench/fig15_simplification.cc.o"
  "CMakeFiles/bench_fig15_simplification.dir/bench/fig15_simplification.cc.o.d"
  "bench/fig15_simplification"
  "bench/fig15_simplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_simplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
