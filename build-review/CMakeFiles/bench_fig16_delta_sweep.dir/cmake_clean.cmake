file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_delta_sweep.dir/bench/fig16_delta_sweep.cc.o"
  "CMakeFiles/bench_fig16_delta_sweep.dir/bench/fig16_delta_sweep.cc.o.d"
  "bench/fig16_delta_sweep"
  "bench/fig16_delta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_delta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
