file(REMOVE_RECURSE
  "CMakeFiles/polyline_dbscan_test.dir/tests/polyline_dbscan_test.cc.o"
  "CMakeFiles/polyline_dbscan_test.dir/tests/polyline_dbscan_test.cc.o.d"
  "tests/polyline_dbscan_test"
  "tests/polyline_dbscan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyline_dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
