# Empty compiler generated dependencies file for bench_fig17_lambda_sweep.
# This may be replaced when dependencies are built.
