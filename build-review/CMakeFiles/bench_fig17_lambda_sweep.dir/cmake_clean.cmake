file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_lambda_sweep.dir/bench/fig17_lambda_sweep.cc.o"
  "CMakeFiles/bench_fig17_lambda_sweep.dir/bench/fig17_lambda_sweep.cc.o.d"
  "bench/fig17_lambda_sweep"
  "bench/fig17_lambda_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_lambda_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
