file(REMOVE_RECURSE
  "CMakeFiles/trajectory_test.dir/tests/trajectory_test.cc.o"
  "CMakeFiles/trajectory_test.dir/tests/trajectory_test.cc.o.d"
  "tests/trajectory_test"
  "tests/trajectory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
