file(REMOVE_RECURSE
  "CMakeFiles/error_handling_test.dir/tests/error_handling_test.cc.o"
  "CMakeFiles/error_handling_test.dir/tests/error_handling_test.cc.o.d"
  "tests/error_handling_test"
  "tests/error_handling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_handling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
