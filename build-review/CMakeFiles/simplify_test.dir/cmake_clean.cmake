file(REMOVE_RECURSE
  "CMakeFiles/simplify_test.dir/tests/simplify_test.cc.o"
  "CMakeFiles/simplify_test.dir/tests/simplify_test.cc.o.d"
  "tests/simplify_test"
  "tests/simplify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
