# Empty dependencies file for bench_fig1_lossy_flock.
# This may be replaced when dependencies are built.
