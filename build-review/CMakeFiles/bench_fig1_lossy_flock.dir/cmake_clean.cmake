file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_lossy_flock.dir/bench/fig1_lossy_flock.cc.o"
  "CMakeFiles/bench_fig1_lossy_flock.dir/bench/fig1_lossy_flock.cc.o.d"
  "bench/fig1_lossy_flock"
  "bench/fig1_lossy_flock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_lossy_flock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
