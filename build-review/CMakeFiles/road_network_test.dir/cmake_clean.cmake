file(REMOVE_RECURSE
  "CMakeFiles/road_network_test.dir/tests/road_network_test.cc.o"
  "CMakeFiles/road_network_test.dir/tests/road_network_test.cc.o.d"
  "tests/road_network_test"
  "tests/road_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
