file(REMOVE_RECURSE
  "CMakeFiles/str_tree_test.dir/tests/str_tree_test.cc.o"
  "CMakeFiles/str_tree_test.dir/tests/str_tree_test.cc.o.d"
  "tests/str_tree_test"
  "tests/str_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/str_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
