# Empty compiler generated dependencies file for str_tree_test.
# This may be replaced when dependencies are built.
