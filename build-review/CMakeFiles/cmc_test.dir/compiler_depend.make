# Empty compiler generated dependencies file for cmc_test.
# This may be replaced when dependencies are built.
