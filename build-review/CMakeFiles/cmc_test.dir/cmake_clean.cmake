file(REMOVE_RECURSE
  "CMakeFiles/cmc_test.dir/tests/cmc_test.cc.o"
  "CMakeFiles/cmc_test.dir/tests/cmc_test.cc.o.d"
  "tests/cmc_test"
  "tests/cmc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
