file(REMOVE_RECURSE
  "CMakeFiles/geom_segment_test.dir/tests/geom_segment_test.cc.o"
  "CMakeFiles/geom_segment_test.dir/tests/geom_segment_test.cc.o.d"
  "tests/geom_segment_test"
  "tests/geom_segment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
