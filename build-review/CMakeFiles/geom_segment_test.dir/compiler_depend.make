# Empty compiler generated dependencies file for geom_segment_test.
# This may be replaced when dependencies are built.
