file(REMOVE_RECURSE
  "CMakeFiles/herd_tracking.dir/examples/herd_tracking.cpp.o"
  "CMakeFiles/herd_tracking.dir/examples/herd_tracking.cpp.o.d"
  "examples/herd_tracking"
  "examples/herd_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
