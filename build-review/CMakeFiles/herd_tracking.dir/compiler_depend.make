# Empty compiler generated dependencies file for herd_tracking.
# This may be replaced when dependencies are built.
