# Empty dependencies file for cleaning_test.
# This may be replaced when dependencies are built.
