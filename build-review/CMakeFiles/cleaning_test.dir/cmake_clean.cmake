file(REMOVE_RECURSE
  "CMakeFiles/cleaning_test.dir/tests/cleaning_test.cc.o"
  "CMakeFiles/cleaning_test.dir/tests/cleaning_test.cc.o.d"
  "tests/cleaning_test"
  "tests/cleaning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
