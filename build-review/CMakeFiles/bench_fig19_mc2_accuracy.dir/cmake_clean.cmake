file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_mc2_accuracy.dir/bench/fig19_mc2_accuracy.cc.o"
  "CMakeFiles/bench_fig19_mc2_accuracy.dir/bench/fig19_mc2_accuracy.cc.o.d"
  "bench/fig19_mc2_accuracy"
  "bench/fig19_mc2_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_mc2_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
