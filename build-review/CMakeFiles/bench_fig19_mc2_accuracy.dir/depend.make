# Empty dependencies file for bench_fig19_mc2_accuracy.
# This may be replaced when dependencies are built.
