file(REMOVE_RECURSE
  "CMakeFiles/bench_param_guidelines.dir/bench/param_guidelines.cc.o"
  "CMakeFiles/bench_param_guidelines.dir/bench/param_guidelines.cc.o.d"
  "bench/param_guidelines"
  "bench/param_guidelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_guidelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
