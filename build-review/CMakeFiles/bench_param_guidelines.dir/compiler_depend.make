# Empty compiler generated dependencies file for bench_param_guidelines.
# This may be replaced when dependencies are built.
