file(REMOVE_RECURSE
  "CMakeFiles/cuts_test.dir/tests/cuts_test.cc.o"
  "CMakeFiles/cuts_test.dir/tests/cuts_test.cc.o.d"
  "tests/cuts_test"
  "tests/cuts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
