file(REMOVE_RECURSE
  "CMakeFiles/mc2_test.dir/tests/mc2_test.cc.o"
  "CMakeFiles/mc2_test.dir/tests/mc2_test.cc.o.d"
  "tests/mc2_test"
  "tests/mc2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
