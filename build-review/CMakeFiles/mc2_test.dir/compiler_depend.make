# Empty compiler generated dependencies file for mc2_test.
# This may be replaced when dependencies are built.
